//! `blackscholes` — PARSEC option pricing.
//!
//! Paper plan: `DSWP+[Spec-DOALL, S]` with control-flow speculation on an
//! error condition; the TLS parallelization peaks around 52 cores because
//! inter-thread communication latency grows with the core count (§5.2).
//!
//! Kernel: each iteration prices one European option with the
//! Black-Scholes closed form. The speculated error path is an invalid
//! option (non-positive time to maturity); recovery prices it with the
//! guarded sequential code.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, RecoveryFn, Region, RunResult, StageId, StageRole, StageSpec, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_paradigms::paradigm::StageLabel;
use dsmtx_paradigms::{Paradigm, Pipeline, SpecDoall, SpecKind, Tuning};
use dsmtx_sim::{
    profile::{StageProfile, StageShape},
    TlsPlan, WorkloadProfile,
};
use dsmtx_uva::VAddr;

use crate::analysis::AnalysisPlan;
use crate::common::{
    f2w, load_words, master_heap, store_words, w2f, Kernel, KernelError, Mode, Scale, Stream,
    Table2Entry,
};

/// Words per option record: spot, strike, rate, volatility, time, is_put.
pub const OPTION_WORDS: u64 = 6;

/// The blackscholes kernel.
#[derive(Debug, Default)]
pub struct BlackScholes;

/// Cumulative normal distribution (Abramowitz–Stegun 26.2.17).
fn cnd(x: f64) -> f64 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Prices one option; `Err(())` is the rare error path the plan
/// speculates against.
fn price(opt: &[u64]) -> Result<u64, ()> {
    let (s, k, r, v, t) = (
        w2f(opt[0]),
        w2f(opt[1]),
        w2f(opt[2]),
        w2f(opt[3]),
        w2f(opt[4]),
    );
    let is_put = opt[5] != 0;
    if t <= 0.0 || v <= 0.0 || s <= 0.0 || k <= 0.0 {
        return Err(());
    }
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
    let d2 = d1 - v * t.sqrt();
    let call = s * cnd(d1) - k * (-r * t).exp() * cnd(d2);
    let p = if is_put {
        call - s + k * (-r * t).exp()
    } else {
        call
    };
    Ok(f2w(p))
}

fn error_output(i: u64) -> u64 {
    0xEBAD_0000_0000_0000 | i
}

/// Heap layout of the parallel plan (deterministic allocation order, so
/// `plan()` and the runners agree on addresses).
struct Layout {
    in_base: VAddr,
    out_base: VAddr,
}

fn layout(scale: Scale) -> Result<Layout, KernelError> {
    let n = scale.iterations;
    let mut heap = master_heap();
    let in_base = heap
        .alloc_words(n * OPTION_WORDS)
        .map_err(|e| KernelError(e.to_string()))?;
    let out_base = heap
        .alloc_words(n)
        .map_err(|e| KernelError(e.to_string()))?;
    Ok(Layout { in_base, out_base })
}

fn recovery_fn(lay: &Layout) -> RecoveryFn {
    let (in_base, out_base) = (lay.in_base, lay.out_base);
    Box::new(move |mtx: MtxId, master: &mut MasterMem| {
        let opt = load_words(
            master,
            in_base.add_words(mtx.0 * OPTION_WORDS),
            OPTION_WORDS,
        );
        let out = price(&opt).unwrap_or_else(|()| error_output(mtx.0));
        master.write(out_base.add_words(mtx.0), out);
        IterOutcome::Continue
    })
}

fn generate(scale: Scale, plant_error: bool) -> Vec<u64> {
    let mut s = Stream::new(scale.seed);
    let mut input = Vec::with_capacity((scale.iterations * OPTION_WORDS) as usize);
    for _ in 0..scale.iterations {
        let spot = 20.0 + s.below(160) as f64;
        let strike = 20.0 + s.below(160) as f64;
        let rate = 0.01 + s.below(9) as f64 / 100.0;
        let vol = 0.10 + s.below(50) as f64 / 100.0;
        let time = 0.25 + s.below(16) as f64 / 4.0;
        let is_put = s.below(2);
        input.extend_from_slice(&[
            f2w(spot),
            f2w(strike),
            f2w(rate),
            f2w(vol),
            f2w(time),
            is_put,
        ]);
    }
    if plant_error {
        // Invalid maturity on the middle option.
        let idx = (scale.iterations / 2) * OPTION_WORDS + 4;
        input[idx as usize] = f2w(-1.0);
    }
    input
}

impl BlackScholes {
    fn sequential(input: &[u64], scale: Scale) -> Vec<u64> {
        (0..scale.iterations)
            .map(|i| {
                let opt = &input[(i * OPTION_WORDS) as usize..((i + 1) * OPTION_WORDS) as usize];
                price(opt).unwrap_or_else(|()| error_output(i))
            })
            .collect()
    }

    fn run_with_input(
        &self,
        mode: Mode,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<Vec<u64>, KernelError> {
        if let Mode::Sequential = mode {
            return Ok(Self::sequential(&input, scale));
        }
        let lay = layout(scale)?;
        let result = self.result_with_input(mode, 1, scale, input)?;
        Ok(load_words(&result.master, lay.out_base, scale.iterations))
    }

    /// The parallel paths, at an explicit try-commit shard count,
    /// returning the full run result.
    fn result_with_input(
        &self,
        mode: Mode,
        shards: usize,
        scale: Scale,
        input: Vec<u64>,
    ) -> Result<RunResult, KernelError> {
        let n = scale.iterations;
        let lay = layout(scale)?;
        let (in_base, out_base) = (lay.in_base, lay.out_base);
        let mut master = MasterMem::new();
        store_words(&mut master, in_base, &input);

        let load_option =
            move |ctx: &mut WorkerCtx, i: u64| -> Result<Vec<u64>, dsmtx::Interrupt> {
                (0..OPTION_WORDS)
                    .map(|k| ctx.read_private(in_base.add_words(i * OPTION_WORDS + k)))
                    .collect()
            };
        let compute = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 >= n {
                return Ok(IterOutcome::Continue);
            }
            let opt = load_option(ctx, mtx.0)?;
            match price(&opt) {
                Ok(p) => {
                    ctx.produce_to(StageId(1), p);
                    Ok(IterOutcome::Continue)
                }
                Err(()) => ctx.misspec(),
            }
        });
        let emit = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
            if mtx.0 >= n {
                return Ok(IterOutcome::Continue);
            }
            let p = ctx.consume_from(StageId(0));
            ctx.write_no_forward(out_base.add_words(mtx.0), p)?;
            Ok(IterOutcome::Continue)
        });
        let recovery = recovery_fn(&lay);

        let result = match mode {
            Mode::Dsmtx { workers } => Pipeline::new()
                .par(workers.max(1), compute)
                .seq(emit)
                .tuning(Tuning::with_unit_shards(shards))
                .run(master, recovery, Some(n))?,
            Mode::Tls { workers } => {
                let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
                    if mtx.0 >= n {
                        return Ok(IterOutcome::Continue);
                    }
                    let opt = load_option(ctx, mtx.0)?;
                    match price(&opt) {
                        Ok(p) => {
                            ctx.write_no_forward(out_base.add_words(mtx.0), p)?;
                            Ok(IterOutcome::Continue)
                        }
                        Err(()) => ctx.misspec(),
                    }
                });
                SpecDoall {
                    replicas: workers.max(1),
                    tuning: Tuning::with_unit_shards(shards),
                }
                .run(master, body, recovery, Some(n))?
            }
            Mode::Sequential => unreachable!("parallel paths only"),
        };
        Ok(result)
    }

    /// Runs with one invalid option to exercise the speculated error path.
    pub fn run_with_planted_error(
        &self,
        mode: Mode,
        scale: Scale,
    ) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, true))
    }
}

impl Kernel for BlackScholes {
    fn info(&self) -> Table2Entry {
        Table2Entry {
            name: "blackscholes",
            suite: "PARSEC",
            description: "option pricing",
            paradigm: Paradigm::Dswp {
                stages: vec![StageLabel::Doall, StageLabel::S],
                spec_stage: Some(0),
            },
            speculation: vec![SpecKind::ControlFlow],
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "blackscholes".into(),
            iter_work: 250.0e-6,
            iterations: 20_000,
            coverage: 0.995,
            stages: vec![
                StageProfile {
                    shape: StageShape::Parallel,
                    work_fraction: 0.997,
                    bytes_out: 8.0,
                },
                StageProfile {
                    shape: StageShape::Sequential,
                    work_fraction: 0.003,
                    bytes_out: 0.0,
                },
            ],
            validation_words: 2.0,
            tls: TlsPlan {
                sync_fraction: 0.004,
                bytes_per_iter: 8.0,
                validation_words: 2.0,
            },
            chunked: false,
            invocation: None,
        }
    }

    fn run(&self, mode: Mode, scale: Scale) -> Result<Vec<u64>, KernelError> {
        self.run_with_input(mode, scale, generate(scale, false))
    }

    fn run_reported(
        &self,
        workers: u16,
        unit_shards: usize,
        scale: Scale,
    ) -> Result<RunResult, KernelError> {
        self.result_with_input(
            Mode::Dsmtx { workers },
            unit_shards,
            scale,
            generate(scale, false),
        )
    }

    fn plan(&self, scale: Scale) -> Result<AnalysisPlan, KernelError> {
        let lay = layout(scale)?;
        let mut master = MasterMem::new();
        store_words(&mut master, lay.in_base, &generate(scale, false));
        let recovery = recovery_fn(&lay);
        let (in_base, out_base) = (lay.in_base, lay.out_base);
        Ok(AnalysisPlan {
            name: "blackscholes",
            iterations: scale.iterations,
            master,
            recovery,
            stages: vec![
                // Option records are read-only after loop entry.
                StageSpec::new(
                    "compute",
                    StageRole::Parallel,
                    Box::new(move |mtx| {
                        vec![Region::read(
                            "options",
                            in_base.add_words(mtx * OPTION_WORDS),
                            OPTION_WORDS,
                        )]
                    }),
                ),
                StageSpec::new(
                    "emit",
                    StageRole::Sequential,
                    Box::new(move |mtx| vec![Region::write("out", out_base.add_words(mtx), 1)]),
                ),
            ],
            shard_map: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let k = BlackScholes;
        let scale = Scale::test();
        let seq = k.run(Mode::Sequential, scale).unwrap();
        let par = k.run(Mode::Dsmtx { workers: 3 }, scale).unwrap();
        let tls = k.run(Mode::Tls { workers: 2 }, scale).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, tls);
    }

    #[test]
    fn error_path_recovers() {
        let k = BlackScholes;
        let scale = Scale::test();
        let seq = k.run_with_planted_error(Mode::Sequential, scale).unwrap();
        let par = k
            .run_with_planted_error(Mode::Dsmtx { workers: 2 }, scale)
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(
            seq[(scale.iterations / 2) as usize],
            error_output(scale.iterations / 2)
        );
    }

    #[test]
    fn put_call_parity_holds() {
        // C - P = S - K e^{-rT}
        let opt_call = [f2w(100.0), f2w(100.0), f2w(0.05), f2w(0.2), f2w(1.0), 0];
        let opt_put = [f2w(100.0), f2w(100.0), f2w(0.05), f2w(0.2), f2w(1.0), 1];
        let c = w2f(price(&opt_call).unwrap());
        let p = w2f(price(&opt_put).unwrap());
        let parity = 100.0 - 100.0 * (-0.05f64).exp();
        assert!((c - p - parity).abs() < 1e-9, "c={c} p={p}");
    }

    #[test]
    fn cnd_is_a_distribution() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-7);
        assert!(cnd(6.0) > 0.999999);
        assert!(cnd(-6.0) < 1e-6);
        assert!((cnd(1.0) + cnd(-1.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn profile_is_consistent() {
        BlackScholes.profile().check();
    }
}
