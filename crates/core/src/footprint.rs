//! Declared memory footprints for pipeline stages — the analyzable
//! description of a `Program` partition.
//!
//! A [`crate::Program`] carries opaque stage closures; nothing about what
//! memory each stage touches survives into a form the dependence analyzer
//! can inspect. [`StageSpec`] is the missing declaration: for each stage
//! of a plan, its role in the pipeline, a per-iteration footprint (which
//! UVA regions it may load or store), and which addresses the plan
//! forwards synchronously between iterations instead of speculating on
//! (DSWP produce/consume or the TLS ring's `sync_produce`/`sync_take`).
//!
//! The partition linter in `dsmtx-analyze` checks a recorded sequential
//! access stream against these declarations: an access outside every
//! declared footprint is a `CapturedStateEscape`; a loop-carried flow
//! dependence that is neither forwarded nor contained in a sequential
//! stage is an `UnforwardedLoopCarriedFlow` the runtime will speculate
//! on.

use dsmtx_uva::VAddr;

/// How a stage is scheduled, which decides whether a loop-carried
/// dependence contained in it is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageRole {
    /// One replica, every iteration in program order on one worker
    /// (DSWP sequential stage). A loop-carried dependence whose source
    /// and sink both live here is reproduced exactly by replay: the
    /// single worker's private memory retains its own stores across
    /// iterations.
    Sequential,
    /// N replicas, iterations round-robined (DOALL / parallel stage). A
    /// loop-carried dependence read here is speculated: the reading
    /// replica does not see other replicas' uncommitted stores.
    Parallel,
    /// One replica per worker with explicit cross-iteration value
    /// forwarding (TLS ring). Carried dependences on declared forwarded
    /// addresses are synchronized, not speculated.
    Ring,
}

impl StageRole {
    /// Stable lowercase name, for reports and golden files.
    pub fn name(self) -> &'static str {
        match self {
            StageRole::Sequential => "sequential",
            StageRole::Parallel => "parallel",
            StageRole::Ring => "ring",
        }
    }
}

/// Declared direction of access to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// The stage only loads from the region.
    Read,
    /// The stage only stores to the region.
    Write,
    /// The stage both loads and stores.
    ReadWrite,
}

impl AccessMode {
    /// Whether the mode admits loads.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the mode admits stores.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// A named, contiguous span of UVA words a stage may touch in one
/// iteration.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Human-readable region name (heap variable name in the kernel).
    pub name: &'static str,
    /// First word of the span.
    pub base: VAddr,
    /// Length in 8-byte words.
    pub words: u64,
    /// Declared access direction.
    pub mode: AccessMode,
}

impl Region {
    /// A read-only span.
    pub fn read(name: &'static str, base: VAddr, words: u64) -> Self {
        Region {
            name,
            base,
            words,
            mode: AccessMode::Read,
        }
    }

    /// A write-only span.
    pub fn write(name: &'static str, base: VAddr, words: u64) -> Self {
        Region {
            name,
            base,
            words,
            mode: AccessMode::Write,
        }
    }

    /// A read-write span.
    pub fn read_write(name: &'static str, base: VAddr, words: u64) -> Self {
        Region {
            name,
            base,
            words,
            mode: AccessMode::ReadWrite,
        }
    }

    /// Whether `addr` falls inside this span.
    pub fn contains(&self, addr: VAddr) -> bool {
        if addr.owner() != self.base.owner() {
            return false;
        }
        let (base, off) = (self.base.offset(), addr.offset());
        off >= base && off < base + 8 * self.words
    }

    /// The word addresses of the span, ascending — the enumeration the
    /// plan differ walks when comparing footprints address-by-address.
    pub fn words_iter(&self) -> impl Iterator<Item = VAddr> + '_ {
        let owner = self.base.owner();
        let base = self.base.offset();
        (0..self.words).map(move |w| VAddr::new(owner, base + 8 * w))
    }

    /// Distinct pages the span touches, ascending.
    pub fn pages(&self) -> Vec<dsmtx_uva::PageId> {
        let mut out: Vec<dsmtx_uva::PageId> = self.words_iter().map(|a| a.page()).collect();
        out.dedup();
        out
    }
}

/// Per-iteration footprint function: the regions a stage may touch when
/// executing iteration `mtx`.
pub type FootprintFn = Box<dyn Fn(u64) -> Vec<Region> + Send + Sync>;

/// The analyzable declaration of one pipeline stage.
pub struct StageSpec {
    /// Stage name for findings ("compute", "emit", ...).
    pub name: &'static str,
    /// Scheduling role, which decides carried-dependence safety.
    pub role: StageRole,
    /// Declared per-iteration memory footprint.
    pub footprint: FootprintFn,
    /// Address spans whose cross-iteration values the plan forwards
    /// synchronously (produce/consume or ring sync) rather than
    /// speculating on. Iteration-independent.
    pub forwarded: Vec<Region>,
}

impl StageSpec {
    /// A stage with the given role and footprint and nothing forwarded.
    pub fn new(name: &'static str, role: StageRole, footprint: FootprintFn) -> Self {
        StageSpec {
            name,
            role,
            footprint,
            forwarded: Vec::new(),
        }
    }

    /// Declares `region`'s cross-iteration values as synchronously
    /// forwarded.
    pub fn forward(mut self, region: Region) -> Self {
        self.forwarded.push(region);
        self
    }

    /// Whether the stage's iteration-`mtx` footprint covers a load of
    /// `addr`.
    pub fn covers_load(&self, mtx: u64, addr: VAddr) -> bool {
        (self.footprint)(mtx)
            .iter()
            .any(|r| r.mode.reads() && r.contains(addr))
    }

    /// Whether the stage's iteration-`mtx` footprint covers a store to
    /// `addr`.
    pub fn covers_store(&self, mtx: u64, addr: VAddr) -> bool {
        (self.footprint)(mtx)
            .iter()
            .any(|r| r.mode.writes() && r.contains(addr))
    }

    /// Whether `addr` is declared forwarded by this stage.
    pub fn forwards(&self, addr: VAddr) -> bool {
        self.forwarded.iter().any(|r| r.contains(addr))
    }

    /// Evaluates the footprint at iteration `mtx` — the introspection
    /// entry point planners and differs use to enumerate a stage's
    /// declared regions without reaching into the closure.
    pub fn regions(&self, mtx: u64) -> Vec<Region> {
        (self.footprint)(mtx)
    }
}

impl std::fmt::Debug for StageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSpec")
            .field("name", &self.name)
            .field("role", &self.role)
            .field("forwarded", &self.forwarded)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_uva::OwnerId;

    fn at(off: u64) -> VAddr {
        VAddr::new(OwnerId(0), off)
    }

    #[test]
    fn region_containment_is_word_exact() {
        let r = Region::read("buf", at(64), 4);
        assert!(!r.contains(at(56)));
        assert!(r.contains(at(64)));
        assert!(r.contains(at(88)));
        assert!(!r.contains(at(96)));
        // Different owner, same offset: not contained.
        assert!(!r.contains(VAddr::new(OwnerId(1), 64)));
    }

    #[test]
    fn access_modes_partition_directions() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }

    #[test]
    fn stage_cover_checks_direction_and_iteration() {
        // Stage reads element `mtx` of a table and writes one output cell.
        let spec = StageSpec::new(
            "compute",
            StageRole::Parallel,
            Box::new(|mtx| {
                vec![
                    Region::read("table", at(mtx * 8), 1),
                    Region::write("out", at(1024 + mtx * 8), 1),
                ]
            }),
        );
        assert!(spec.covers_load(3, at(24)));
        assert!(!spec.covers_load(4, at(24)), "wrong iteration");
        assert!(!spec.covers_store(3, at(24)), "read-only region");
        assert!(spec.covers_store(3, at(1048)));
        assert!(!spec.forwards(at(24)));
    }

    #[test]
    fn region_word_and_page_enumeration() {
        let r = Region::write("buf", at(4088), 3);
        let words: Vec<u64> = r.words_iter().map(|a| a.offset()).collect();
        assert_eq!(words, vec![4088, 4096, 4104]);
        let pages: Vec<u64> = r.pages().iter().map(|p| p.0).collect();
        assert_eq!(pages, vec![0, 1], "span straddles the page boundary");
        assert_eq!(StageRole::Parallel.name(), "parallel");
    }

    #[test]
    fn forwarded_regions_are_iteration_independent() {
        let spec = StageSpec::new(
            "scan",
            StageRole::Ring,
            Box::new(|_| vec![Region::read_write("acc", at(0), 1)]),
        )
        .forward(Region::read_write("acc", at(0), 1));
        assert!(spec.forwards(at(0)));
        assert!(!spec.forwards(at(8)));
    }
}
