//! Turns the raw `TraceSink` event stream into per-stage latency
//! histograms, occupancy, commit-queue waits, critical-path breakdowns,
//! runtime-invariant checks, and a Chrome `trace_event` export.
//!
//! The MTX lifecycle being measured (paper §3, Figure 3):
//!
//! ```text
//!   SubTxBegin ─ stage 0 ─ SubTxEnd ─ ... ─ SubTxEnd ─┐ (last stage)
//!        │                                            ▼
//!        │                              validation wait (try-commit queue)
//!        │                                            ▼
//!        │                                        Validated
//!        │                                            ▼
//!        │                               commit wait (commit queue)
//!        │                                            ▼
//!        └───────────── total latency ───────────► Committed
//! ```

use std::collections::{BTreeMap, HashMap};

use dsmtx_obs::{ChromeTrace, Histogram, Registry};

use crate::ids::{MtxId, StageId};
use crate::trace::{Role, TraceEvent, TraceKind};

/// Mean per-MTX time attribution: where a committed iteration's wall
/// clock went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPath {
    /// Mean time inside subTX execution (summed across stages).
    pub exec_us: f64,
    /// Mean wait from last `SubTxEnd` to `Validated`.
    pub validation_wait_us: f64,
    /// Mean wait from `Validated` to `Committed`.
    pub commit_wait_us: f64,
    /// Mean first `SubTxBegin` → `Committed`.
    pub total_us: f64,
}

/// Post-hoc analysis of one run's trace.
#[derive(Debug)]
pub struct TraceAnalysis {
    stage_exec: BTreeMap<u16, Histogram>,
    validation_wait: Histogram,
    commit_wait: Histogram,
    total_latency: Histogram,
    commit_period: Histogram,
    exec_per_mtx: Histogram,
    commit_order: Vec<MtxId>,
    busy_us: BTreeMap<Role, u64>,
    span_us: u64,
    recoveries: u64,
    violations: Vec<String>,
}

impl TraceAnalysis {
    /// Derives every metric from an event stream (as returned by
    /// `TraceSink::events` / stored in `RunReport::trace`).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut stage_exec: BTreeMap<u16, Histogram> = BTreeMap::new();
        let validation_wait = Histogram::new();
        let commit_wait = Histogram::new();
        let total_latency = Histogram::new();
        let commit_period = Histogram::new();
        let exec_per_mtx = Histogram::new();
        let mut commit_order = Vec::new();
        let mut busy_us: BTreeMap<Role, u64> = BTreeMap::new();
        let mut violations = Vec::new();

        // Per-role currently-open subTX, for begin/end matching.
        let mut open: HashMap<Role, (MtxId, StageId, u64)> = HashMap::new();
        // Per-MTX lifecycle aggregates.
        #[derive(Default)]
        struct Life {
            first_begin: Option<u64>,
            last_end: Option<u64>,
            exec_us: u64,
            validated_at: Option<u64>,
            committed_at: Option<u64>,
            unmatched_begins: u32,
            stray_ends: u32,
        }
        let mut lives: HashMap<MtxId, Life> = HashMap::new();
        let mut recoveries = 0u64;
        let mut last_commit_at: Option<u64> = None;

        for e in events {
            match e.kind {
                TraceKind::SubTxBegin => {
                    let (Some(mtx), Some(stage)) = (e.mtx, e.stage) else {
                        violations.push(format!("SubTxBegin without mtx/stage at {}us", e.at_us));
                        continue;
                    };
                    if let Some((open_mtx, _, _)) = open.insert(e.role, (mtx, stage, e.at_us)) {
                        lives.entry(open_mtx).or_default().unmatched_begins += 1;
                    }
                    let life = lives.entry(mtx).or_default();
                    life.first_begin = Some(life.first_begin.map_or(e.at_us, |t| t.min(e.at_us)));
                }
                TraceKind::SubTxEnd => {
                    let (Some(mtx), Some(stage)) = (e.mtx, e.stage) else {
                        violations.push(format!("SubTxEnd without mtx/stage at {}us", e.at_us));
                        continue;
                    };
                    match open.remove(&e.role) {
                        Some((m, s, began)) if m == mtx && s == stage => {
                            let dur = e.at_us.saturating_sub(began);
                            stage_exec.entry(stage.0).or_default().record(dur);
                            *busy_us.entry(e.role).or_insert(0) += dur;
                            let life = lives.entry(mtx).or_default();
                            life.exec_us += dur;
                            life.last_end = Some(life.last_end.map_or(e.at_us, |t| t.max(e.at_us)));
                        }
                        other => {
                            if let Some(o) = other {
                                open.insert(e.role, o);
                            }
                            lives.entry(mtx).or_default().stray_ends += 1;
                        }
                    }
                }
                TraceKind::Validated => {
                    if let Some(mtx) = e.mtx {
                        lives.entry(mtx).or_default().validated_at = Some(e.at_us);
                    }
                }
                TraceKind::Conflict => {}
                TraceKind::Committed => {
                    let Some(mtx) = e.mtx else {
                        violations.push(format!("Committed without mtx at {}us", e.at_us));
                        continue;
                    };
                    commit_order.push(mtx);
                    lives.entry(mtx).or_default().committed_at = Some(e.at_us);
                    if let Some(prev) = last_commit_at {
                        commit_period.record(e.at_us.saturating_sub(prev));
                    }
                    last_commit_at = Some(e.at_us);
                }
                TraceKind::RecoveryStart | TraceKind::FaultRecoveryStart => recoveries += 1,
                // Intra-subTX phase markers; the span builder consumes
                // them, the aggregate analysis keeps begin/end semantics.
                TraceKind::ExecBegin | TraceKind::FlushBegin => {}
                TraceKind::RecoveryEnd | TraceKind::Terminated => {}
            }
        }
        // Still-open subTXs at stream end (normal during recovery or
        // termination; a violation only if that MTX also committed).
        for (_, (mtx, _, _)) in open {
            lives.entry(mtx).or_default().unmatched_begins += 1;
        }

        // Lifecycle-derived distributions and committed-MTX invariants.
        for (mtx, life) in &lives {
            let Some(committed_at) = life.committed_at else {
                continue;
            };
            exec_per_mtx.record(life.exec_us);
            match life.validated_at {
                Some(v) => {
                    if v > committed_at {
                        violations.push(format!("{mtx} validated after commit"));
                    }
                    commit_wait.record(committed_at.saturating_sub(v));
                    if let Some(end) = life.last_end {
                        validation_wait.record(v.saturating_sub(end));
                    }
                }
                None => violations.push(format!("{mtx} committed without validation")),
            }
            if let Some(begin) = life.first_begin {
                total_latency.record(committed_at.saturating_sub(begin));
            } else {
                violations.push(format!("{mtx} committed but never began a subTX"));
            }
            if life.unmatched_begins > 0 {
                violations.push(format!(
                    "{mtx} committed with {} SubTxBegin(s) lacking a SubTxEnd",
                    life.unmatched_begins
                ));
            }
            if life.stray_ends > 0 {
                violations.push(format!(
                    "{mtx} has {} SubTxEnd(s) with no matching SubTxBegin",
                    life.stray_ends
                ));
            }
        }

        // Commit order must follow iteration order; with no recoveries it
        // must also be gapless.
        for pair in commit_order.windows(2) {
            if pair[1].0 <= pair[0].0 {
                violations.push(format!("{} committed after {}", pair[1], pair[0]));
            } else if recoveries == 0 && pair[1].0 != pair[0].0 + 1 {
                violations.push(format!(
                    "commit gap between {} and {} without recovery",
                    pair[0], pair[1]
                ));
            }
        }

        let span_us = match (events.first(), events.last()) {
            (Some(a), Some(b)) => b.at_us.saturating_sub(a.at_us),
            _ => 0,
        };

        violations.sort();
        TraceAnalysis {
            stage_exec,
            validation_wait,
            commit_wait,
            total_latency,
            commit_period,
            exec_per_mtx,
            commit_order,
            busy_us,
            span_us,
            recoveries,
            violations,
        }
    }

    /// Stages that executed at least one subTX, ascending.
    pub fn stages(&self) -> Vec<StageId> {
        self.stage_exec.keys().map(|&s| StageId(s)).collect()
    }

    /// SubTX execution-time histogram for one stage.
    pub fn stage_exec(&self, stage: StageId) -> Option<&Histogram> {
        self.stage_exec.get(&stage.0)
    }

    /// Wait from an MTX's last `SubTxEnd` to its `Validated` event.
    pub fn validation_wait(&self) -> &Histogram {
        &self.validation_wait
    }

    /// Commit-queue wait: `Validated` → `Committed`.
    pub fn commit_wait(&self) -> &Histogram {
        &self.commit_wait
    }

    /// First `SubTxBegin` → `Committed` per MTX.
    pub fn total_latency(&self) -> &Histogram {
        &self.total_latency
    }

    /// Inter-commit period at the commit unit (pipeline throughput).
    pub fn commit_period(&self) -> &Histogram {
        &self.commit_period
    }

    /// MTXs in the order the commit unit committed them.
    pub fn commit_order(&self) -> &[MtxId] {
        &self.commit_order
    }

    /// Misspeculation recoveries observed in the trace.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Wall-clock span covered by the trace, in microseconds.
    pub fn span_us(&self) -> u64 {
        self.span_us
    }

    /// Fraction of the trace span each role spent inside subTXs,
    /// ascending by role. Only roles that executed subTXs (workers)
    /// appear.
    pub fn occupancy(&self) -> Vec<(Role, f64)> {
        self.busy_us
            .iter()
            .map(|(&role, &busy)| {
                let frac = if self.span_us == 0 {
                    0.0
                } else {
                    busy as f64 / self.span_us as f64
                };
                (role, frac.min(1.0))
            })
            .collect()
    }

    /// Mean per-committed-MTX attribution of time.
    pub fn critical_path(&self) -> CriticalPath {
        CriticalPath {
            exec_us: self.exec_per_mtx.mean(),
            validation_wait_us: self.validation_wait.mean(),
            commit_wait_us: self.commit_wait.mean(),
            total_us: self.total_latency.mean(),
        }
    }

    /// Runtime invariants the trace must satisfy: commit order follows
    /// iteration order, every committed MTX validated first, and every
    /// committed MTX's `SubTxBegin`s have matching `SubTxEnd`s.
    ///
    /// # Errors
    ///
    /// Returns the list of human-readable violations.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations.clone())
        }
    }

    /// Installs every derived histogram and occupancy gauge into `reg`
    /// under the shared [`dsmtx_obs::schema`] names.
    pub fn to_registry(&self, reg: &Registry) {
        for (stage, hist) in &self.stage_exec {
            reg.install_histogram(
                dsmtx_obs::schema::STAGE_EXEC_US,
                &[("stage", &stage.to_string())],
                hist.clone(),
            );
        }
        reg.install_histogram(
            dsmtx_obs::schema::MTX_VALIDATION_WAIT_US,
            &[],
            self.validation_wait.clone(),
        );
        reg.install_histogram(
            dsmtx_obs::schema::MTX_COMMIT_WAIT_US,
            &[],
            self.commit_wait.clone(),
        );
        reg.install_histogram(
            dsmtx_obs::schema::MTX_TOTAL_LATENCY_US,
            &[],
            self.total_latency.clone(),
        );
        reg.install_histogram(
            dsmtx_obs::schema::MTX_COMMIT_PERIOD_US,
            &[],
            self.commit_period.clone(),
        );
        for (role, frac) in self.occupancy() {
            reg.gauge(
                dsmtx_obs::schema::ROLE_BUSY_PPM,
                &[("role", &role.to_string())],
            )
            .set((frac * 1.0e6) as i64);
        }
    }

    /// Renders an event stream as Chrome `trace_event` JSON: one track
    /// per worker plus try-commit and commit tracks, MTX-labeled spans
    /// for subTXs and recovery, instants for validation and commit.
    pub fn chrome_trace(events: &[TraceEvent]) -> ChromeTrace {
        const PID: u64 = 1;
        const TID_TRY_COMMIT: u64 = 10_000;
        // Leaves room for one try-commit track per shard in between.
        const TID_COMMIT: u64 = 20_000;
        fn tid(role: Role) -> u64 {
            match role {
                Role::Worker(w) => w as u64,
                // One track per shard, above the worker tracks.
                Role::TryCommit(s) => TID_TRY_COMMIT + s as u64,
                Role::Commit => TID_COMMIT,
            }
        }

        let mut trace = ChromeTrace::new();
        let mut named: Vec<Role> = events.iter().map(|e| e.role).collect();
        named.sort();
        named.dedup();
        // Make sure the try-commit and commit tracks exist even if they
        // recorded nothing, and name every track.
        for extra in [Role::TryCommit(0), Role::Commit] {
            if !named.contains(&extra) {
                named.push(extra);
            }
        }
        for (i, role) in named.iter().enumerate() {
            trace.thread_name(PID, tid(*role), &role.to_string());
            trace.thread_sort_index(PID, tid(*role), i as i64);
        }

        let mut open: HashMap<Role, (MtxId, StageId, u64)> = HashMap::new();
        let mut recovery_start: Option<(MtxId, u64)> = None;
        for e in events {
            match e.kind {
                TraceKind::SubTxBegin => {
                    if let (Some(mtx), Some(stage)) = (e.mtx, e.stage) {
                        open.insert(e.role, (mtx, stage, e.at_us));
                    }
                }
                TraceKind::SubTxEnd => {
                    if let Some((mtx, stage, began)) = open.remove(&e.role) {
                        if Some(mtx) == e.mtx {
                            trace.span(
                                PID,
                                tid(e.role),
                                &mtx.to_string(),
                                "subtx",
                                began,
                                e.at_us.saturating_sub(began).max(1),
                                &[("stage", stage.to_string())],
                            );
                        }
                    }
                }
                TraceKind::Validated => {
                    if let Some(mtx) = e.mtx {
                        trace.instant(
                            PID,
                            tid(e.role),
                            &format!("validated {mtx}"),
                            "validate",
                            e.at_us,
                            &[],
                        );
                    }
                }
                TraceKind::Conflict => {
                    let label = e
                        .mtx
                        .map_or_else(|| "conflict".to_string(), |m| format!("conflict {m}"));
                    trace.instant(PID, tid(e.role), &label, "conflict", e.at_us, &[]);
                }
                TraceKind::Committed => {
                    if let Some(mtx) = e.mtx {
                        trace.instant(
                            PID,
                            TID_COMMIT,
                            &format!("committed {mtx}"),
                            "commit",
                            e.at_us,
                            &[],
                        );
                    }
                }
                TraceKind::RecoveryStart | TraceKind::FaultRecoveryStart => {
                    if let Some(mtx) = e.mtx {
                        recovery_start = Some((mtx, e.at_us));
                    }
                }
                TraceKind::ExecBegin | TraceKind::FlushBegin => {}
                TraceKind::RecoveryEnd => {
                    if let Some((mtx, began)) = recovery_start.take() {
                        trace.span(
                            PID,
                            TID_COMMIT,
                            &format!("recovery @{mtx}"),
                            "recovery",
                            began,
                            e.at_us.saturating_sub(began).max(1),
                            &[("boundary", mtx.to_string())],
                        );
                    }
                }
                TraceKind::Terminated => {
                    trace.instant(PID, TID_COMMIT, "terminated", "lifecycle", e.at_us, &[]);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(role: Role, mtx: u64, stage: Option<u16>, kind: TraceKind, at_us: u64) -> TraceEvent {
        TraceEvent {
            role,
            mtx: Some(MtxId(mtx)),
            attempt: 0,
            stage: stage.map(StageId),
            kind,
            at_us,
        }
    }

    /// A clean two-iteration, one-stage pipeline trace.
    fn clean_trace() -> Vec<TraceEvent> {
        let w = Role::Worker(0);
        vec![
            ev(w, 0, Some(0), TraceKind::SubTxBegin, 0),
            ev(w, 0, Some(0), TraceKind::SubTxEnd, 100),
            ev(Role::TryCommit(0), 0, None, TraceKind::Validated, 150),
            ev(w, 1, Some(0), TraceKind::SubTxBegin, 120),
            ev(Role::Commit, 0, None, TraceKind::Committed, 200),
            ev(w, 1, Some(0), TraceKind::SubTxEnd, 260),
            ev(Role::TryCommit(0), 1, None, TraceKind::Validated, 300),
            ev(Role::Commit, 1, None, TraceKind::Committed, 340),
            ev(Role::Commit, 1, None, TraceKind::Terminated, 350),
        ]
    }

    #[test]
    fn derives_lifecycle_latencies() {
        let a = TraceAnalysis::from_events(&clean_trace());
        a.check_invariants().expect("clean trace");
        assert_eq!(a.commit_order(), &[MtxId(0), MtxId(1)]);
        let exec = a.stage_exec(StageId(0)).expect("stage 0 seen");
        assert_eq!(exec.count(), 2);
        assert_eq!(exec.sum(), 100 + 140);
        // validation waits: 150-100=50, 300-260=40.
        assert_eq!(a.validation_wait().sum(), 90);
        // commit waits: 200-150=50, 340-300=40.
        assert_eq!(a.commit_wait().sum(), 90);
        // total latencies: 200-0, 340-120.
        assert_eq!(a.total_latency().sum(), 200 + 220);
        assert_eq!(a.commit_period().count(), 1);
        assert_eq!(a.commit_period().sum(), 140);
        assert_eq!(a.span_us(), 350);
        let cp = a.critical_path();
        assert!((cp.total_us - 210.0).abs() < 1e-9);
        assert!((cp.exec_us - 120.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_is_busy_over_span() {
        let a = TraceAnalysis::from_events(&clean_trace());
        let occ = a.occupancy();
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].0, Role::Worker(0));
        assert!((occ[0].1 - 240.0 / 350.0).abs() < 1e-9);
    }

    #[test]
    fn flags_commit_without_validation() {
        let mut events = clean_trace();
        events.retain(|e| !(e.kind == TraceKind::Validated && e.mtx == Some(MtxId(1))));
        let a = TraceAnalysis::from_events(&events);
        let viols = a.check_invariants().unwrap_err();
        assert!(
            viols.iter().any(|v| v.contains("without validation")),
            "{viols:?}"
        );
    }

    #[test]
    fn flags_out_of_order_commit() {
        let mut events = clean_trace();
        // Swap the two Committed events' MTX ids.
        for e in &mut events {
            if e.kind == TraceKind::Committed {
                e.mtx = Some(MtxId(1 - e.mtx.unwrap().0));
            }
        }
        let a = TraceAnalysis::from_events(&events);
        assert!(a.check_invariants().is_err());
    }

    #[test]
    fn flags_unmatched_begin_on_committed_mtx() {
        let w = Role::Worker(0);
        let events = vec![
            ev(w, 0, Some(0), TraceKind::SubTxBegin, 0),
            ev(Role::TryCommit(0), 0, None, TraceKind::Validated, 10),
            ev(Role::Commit, 0, None, TraceKind::Committed, 20),
        ];
        let a = TraceAnalysis::from_events(&events);
        let viols = a.check_invariants().unwrap_err();
        assert!(
            viols.iter().any(|v| v.contains("lacking a SubTxEnd")),
            "{viols:?}"
        );
    }

    #[test]
    fn interrupted_uncommitted_mtx_is_not_a_violation() {
        let w = Role::Worker(0);
        let events = vec![
            ev(w, 0, Some(0), TraceKind::SubTxBegin, 0),
            ev(w, 0, Some(0), TraceKind::SubTxEnd, 5),
            ev(Role::TryCommit(0), 0, None, TraceKind::Validated, 8),
            ev(Role::Commit, 0, None, TraceKind::Committed, 9),
            // Iteration 1 begins, conflicts, and is abandoned by recovery.
            ev(w, 1, Some(0), TraceKind::SubTxBegin, 10),
            ev(Role::TryCommit(0), 1, None, TraceKind::Conflict, 12),
            ev(Role::Commit, 1, None, TraceKind::RecoveryStart, 13),
            ev(Role::Commit, 1, None, TraceKind::RecoveryEnd, 20),
            // Speculation resumes past the boundary.
            ev(w, 2, Some(0), TraceKind::SubTxBegin, 21),
            ev(w, 2, Some(0), TraceKind::SubTxEnd, 25),
            ev(Role::TryCommit(0), 2, None, TraceKind::Validated, 26),
            ev(Role::Commit, 2, None, TraceKind::Committed, 28),
        ];
        let a = TraceAnalysis::from_events(&events);
        a.check_invariants()
            .expect("recovery-interrupted MTX 1 must not violate");
        assert_eq!(a.recoveries(), 1);
        // The commit gap 0 -> 2 is legal because a recovery intervened.
        assert_eq!(a.commit_order(), &[MtxId(0), MtxId(2)]);
    }

    #[test]
    fn commit_gap_without_recovery_is_a_violation() {
        let w = Role::Worker(0);
        let events = vec![
            ev(w, 0, Some(0), TraceKind::SubTxBegin, 0),
            ev(w, 0, Some(0), TraceKind::SubTxEnd, 5),
            ev(Role::TryCommit(0), 0, None, TraceKind::Validated, 6),
            ev(Role::Commit, 0, None, TraceKind::Committed, 7),
            ev(w, 2, Some(0), TraceKind::SubTxBegin, 8),
            ev(w, 2, Some(0), TraceKind::SubTxEnd, 12),
            ev(Role::TryCommit(0), 2, None, TraceKind::Validated, 13),
            ev(Role::Commit, 2, None, TraceKind::Committed, 14),
        ];
        let a = TraceAnalysis::from_events(&events);
        let viols = a.check_invariants().unwrap_err();
        assert!(viols.iter().any(|v| v.contains("commit gap")), "{viols:?}");
    }

    #[test]
    fn empty_trace_is_clean() {
        let a = TraceAnalysis::from_events(&[]);
        a.check_invariants().unwrap();
        assert!(a.commit_order().is_empty());
        assert_eq!(a.span_us(), 0);
        assert!(a.stages().is_empty());
    }

    #[test]
    fn chrome_export_is_valid_and_tracked() {
        let trace = TraceAnalysis::chrome_trace(&clean_trace());
        let doc = trace.render();
        dsmtx_obs::json::validate(&doc).expect("valid chrome trace JSON");
        assert!(doc.contains("\"worker0\""));
        assert!(doc.contains("\"try-commit\""));
        assert!(doc.contains("\"commit\""));
        assert!(doc.contains("mtx0"));
        assert!(doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn registry_export_uses_shared_schema() {
        let a = TraceAnalysis::from_events(&clean_trace());
        let reg = Registry::new();
        a.to_registry(&reg);
        let dump = reg.to_jsonl();
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
        assert!(dump.contains(dsmtx_obs::schema::STAGE_EXEC_US));
        assert!(dump.contains(dsmtx_obs::schema::MTX_COMMIT_WAIT_US));
        assert!(dump.contains(dsmtx_obs::schema::ROLE_BUSY_PPM));
    }
}
