//! Run results and statistics.

use std::time::Duration;

use dsmtx_fabric::FabricStats;
use dsmtx_mem::MasterMem;
use dsmtx_obs::{schema, Histogram, Registry};

use crate::analysis::TraceAnalysis;
use crate::ids::{MtxId, StageId};
use crate::trace::TraceEvent;
use crate::trycommit::ConflictRecord;

/// Per-try-commit-shard statistics (§3.2 parallel speculation units).
///
/// Each shard validates a disjoint hash-partition of the page space; at
/// `unit_shards = 1` the single entry covers the whole validation plane.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// MTXs this shard sent `VerdictOk` for.
    pub validated: u64,
    /// Value-validation conflicts detected in this shard's partition.
    pub conflicts: u64,
    /// `PageId` of every conflicting load this shard detected, in
    /// detection order (one entry per conflict). The analyzer's
    /// certification pass asserts this set is a subset of the conflict
    /// sites predicted from the sequential dependence graph.
    pub conflict_pages: Vec<u64>,
    /// COA pages fetched into this shard's replay image.
    pub coa_fetches: u64,
    /// SubTX stream arrival to replay start, microseconds.
    pub replay_lag: Histogram,
    /// MTX final-stage arrival to verdict send, microseconds.
    pub verdict_latency: Histogram,
    /// Busy fraction of the shard thread, parts per million.
    pub busy_ppm: u64,
}

/// Validation-plane compaction statistics, aggregated across workers.
///
/// "Pre" figures count what the unpacked per-record encoding would have
/// shipped (one fabric item per access plus two framing items per shard
/// and plane); "post" figures count what actually went on the wire
/// (block frames plus their packed payload bytes). With compaction off
/// the two coincide and nothing is filtered.
#[derive(Debug, Default, Clone)]
pub struct ValPlaneStats {
    /// Fabric items the unpacked encoding would have shipped.
    pub records_pre: u64,
    /// Fabric items actually shipped (block frames).
    pub records_post: u64,
    /// Wire bytes the unpacked encoding would have cost.
    pub bytes_pre: u64,
    /// Wire bytes actually spent (frames + packed payloads).
    pub bytes_post: u64,
    /// Access records suppressed by the worker-side store buffer.
    pub records_filtered: u64,
    /// `AccessBlock` frames shipped.
    pub blocks: u64,
    /// Access records carried inside those blocks (post-filter).
    pub block_records: u64,
    /// COA fetches served from the worker page cache (local serves plus
    /// wire revalidations — no page payload crossed the fabric).
    pub cache_hits: u64,
    /// Full-page COA fetches of uncached pages.
    pub cache_misses: u64,
    /// Full-page COA refetches replacing an outdated cached copy.
    pub cache_stale: u64,
}

impl ValPlaneStats {
    /// Folds another worker's counters into this aggregate.
    pub fn merge(&mut self, other: &ValPlaneStats) {
        self.records_pre += other.records_pre;
        self.records_post += other.records_post;
        self.bytes_pre += other.bytes_pre;
        self.bytes_post += other.bytes_post;
        self.records_filtered += other.records_filtered;
        self.blocks += other.blocks;
        self.block_records += other.block_records;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_stale += other.cache_stale;
    }

    /// Mean records per shipped block (0 when no blocks shipped).
    pub fn block_fill(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.block_records as f64 / self.blocks as f64
        }
    }
}

/// Statistics and outcome of one parallel run.
#[derive(Debug)]
pub struct RunReport {
    /// Number of MTXs committed speculatively (excludes iterations
    /// re-executed sequentially during recovery).
    pub committed: u64,
    /// Number of misspeculation recoveries.
    pub recoveries: u64,
    /// Iterations re-executed sequentially by the commit unit.
    pub recovered_iterations: u64,
    /// The last iteration of the loop, if the loop ran at all.
    pub last_iteration: Option<MtxId>,
    /// Copy-On-Access pages served by the commit unit.
    pub coa_pages_served: u64,
    /// Conflicts the try-commit unit detected by value validation
    /// (speculated dependences that manifested).
    pub validation_conflicts: u64,
    /// Misspeculations workers declared explicitly (`mtx_misspec`,
    /// failed control-flow speculation).
    pub worker_misspecs: u64,
    /// Fabric-timeout recovery requests raised (exhausted send retries or
    /// expired receive deadlines under fault injection).
    pub fabric_timeouts: u64,
    /// Recovery rounds run in answer to fabric-timeout requests.
    pub fault_recoveries: u64,
    /// Channels found disconnected while running (each converts into a
    /// typed shutdown; nonzero only when a thread died).
    pub channel_downs: u64,
    /// Per-try-commit-shard statistics, indexed by shard; length is the
    /// configured `unit_shards`.
    pub shard_stats: Vec<ShardStats>,
    /// Every conflict any shard detected, with attribution context
    /// (conflicting page, owning shard, first speculative writer),
    /// sorted by `(mtx, attempt, shard, page)`. Joined to lifecycle
    /// spans by `(mtx, attempt)` when `repro why` explains an abort.
    pub conflict_events: Vec<ConflictRecord>,
    /// Validation-plane compaction and COA-cache counters, aggregated
    /// over all workers.
    pub valplane: ValPlaneStats,
    /// Aggregate fabric traffic (all queues).
    pub stats: FabricStats,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Trace events, when tracing was enabled.
    pub trace: Vec<TraceEvent>,
    /// Trace events discarded because the sink's capacity was reached.
    pub trace_dropped: u64,
}

impl RunReport {
    /// Total iterations whose effects reached committed memory.
    pub fn total_iterations(&self) -> u64 {
        self.committed + self.recovered_iterations
    }

    /// Application-level bandwidth in bytes/second, the Figure 5(a)
    /// metric: total data transferred through DSMTX divided by execution
    /// time.
    pub fn bandwidth_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.stats.bytes() as f64 / secs
        }
    }

    /// Distinct pages on which any try-commit shard observed a
    /// value-validation conflict, sorted ascending — the "observed
    /// conflict sites" side of the analyzer's predicted-vs-observed
    /// certification pass.
    pub fn conflict_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .shard_stats
            .iter()
            .flat_map(|s| s.conflict_pages.iter().copied())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Derives per-stage latency histograms, occupancy, commit-queue
    /// waits, and invariant checks from the trace. Empty (but valid)
    /// when the run was not traced.
    pub fn analysis(&self) -> TraceAnalysis {
        TraceAnalysis::from_events(&self.trace)
    }

    /// Builds one lifecycle span per `(mtx, attempt)` from the trace,
    /// joined with the shards' conflict records. Empty when the run was
    /// not traced. Causes are unset here — attribution lives in
    /// `dsmtx-analyze`, which joins spans against the PDG.
    pub fn spans(&self) -> Vec<dsmtx_obs::MtxSpan> {
        crate::spans::build_spans(&self.trace, &self.conflict_events)
    }

    /// Median subTX execution time for one stage, in microseconds
    /// (0 when untraced or the stage never ran).
    pub fn stage_p50_us(&self, stage: StageId) -> u64 {
        self.analysis().stage_exec(stage).map_or(0, |h| h.p50())
    }

    /// 99th-percentile subTX execution time for one stage, in
    /// microseconds.
    pub fn stage_p99_us(&self, stage: StageId) -> u64 {
        self.analysis().stage_exec(stage).map_or(0, |h| h.p99())
    }

    /// Exports run totals, fabric stats, and trace-derived histograms
    /// into `reg` under the shared [`dsmtx_obs::schema`] names — the
    /// same schema the simulator emits, so real and simulated runs
    /// produce comparable JSONL dumps.
    pub fn to_registry(&self, reg: &Registry) {
        reg.counter(schema::RUN_COMMITTED, &[]).add(self.committed);
        reg.counter(schema::RUN_RECOVERIES, &[])
            .add(self.recoveries);
        reg.counter(schema::RUN_BYTES, &[]).add(self.stats.bytes());
        reg.counter(schema::RUN_TRACE_DROPPED, &[])
            .add(self.trace_dropped);
        reg.counter(schema::TRACE_EVENTS_DROPPED, &[])
            .add(self.trace_dropped);
        reg.counter(schema::RUN_FABRIC_TIMEOUTS, &[])
            .add(self.fabric_timeouts);
        reg.counter(schema::RUN_FAULT_RECOVERIES, &[])
            .add(self.fault_recoveries);
        reg.counter(schema::RUN_CHANNEL_DOWNS, &[])
            .add(self.channel_downs);
        reg.gauge(schema::RUN_ELAPSED_US, &[])
            .set(self.elapsed.as_micros() as i64);
        reg.gauge(schema::RUN_BANDWIDTH_BPS, &[])
            .set(self.bandwidth_bps() as i64);
        for (s, stats) in self.shard_stats.iter().enumerate() {
            let shard = s.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard)];
            reg.counter(schema::SHARD_VALIDATED, labels)
                .add(stats.validated);
            reg.counter(schema::SHARD_CONFLICTS, labels)
                .add(stats.conflicts);
            reg.counter(schema::SHARD_COA_FETCHES, labels)
                .add(stats.coa_fetches);
            reg.gauge(schema::SHARD_OCCUPANCY_PPM, labels)
                .set(stats.busy_ppm as i64);
            reg.install_histogram(
                schema::SHARD_REPLAY_LAG_US,
                labels,
                stats.replay_lag.clone(),
            );
            reg.install_histogram(
                schema::SHARD_VERDICT_LATENCY_US,
                labels,
                stats.verdict_latency.clone(),
            );
        }
        let v = &self.valplane;
        reg.counter(schema::VALPLANE_RECORDS_PRE, &[])
            .add(v.records_pre);
        reg.counter(schema::VALPLANE_RECORDS_POST, &[])
            .add(v.records_post);
        reg.counter(schema::VALPLANE_RECORDS_FILTERED, &[])
            .add(v.records_filtered);
        reg.counter(schema::VALPLANE_BYTES_PRE, &[])
            .add(v.bytes_pre);
        reg.counter(schema::VALPLANE_BYTES_POST, &[])
            .add(v.bytes_post);
        reg.counter(schema::VALPLANE_BLOCKS, &[]).add(v.blocks);
        reg.counter(schema::VALPLANE_BLOCK_RECORDS, &[])
            .add(v.block_records);
        reg.counter(schema::COA_CACHE_HITS, &[]).add(v.cache_hits);
        reg.counter(schema::COA_CACHE_MISSES, &[])
            .add(v.cache_misses);
        reg.counter(schema::COA_CACHE_STALE, &[]).add(v.cache_stale);
        self.stats.to_registry(reg);
        self.analysis().to_registry(reg);
    }
}

/// Everything a run returns: the final committed memory plus the report.
#[derive(Debug)]
pub struct RunResult {
    /// Committed memory at loop exit; read program outputs from here.
    pub master: MasterMem,
    /// Statistics and trace.
    pub report: RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Role, TraceKind};

    fn empty_report() -> RunReport {
        RunReport {
            committed: 0,
            recoveries: 0,
            recovered_iterations: 0,
            last_iteration: None,
            coa_pages_served: 0,
            validation_conflicts: 0,
            worker_misspecs: 0,
            fabric_timeouts: 0,
            fault_recoveries: 0,
            channel_downs: 0,
            shard_stats: Vec::new(),
            conflict_events: Vec::new(),
            valplane: ValPlaneStats::default(),
            stats: FabricStats::new(),
            elapsed: Duration::ZERO,
            trace: Vec::new(),
            trace_dropped: 0,
        }
    }

    #[test]
    fn totals_and_bandwidth() {
        let stats = FabricStats::new();
        stats.record_packet(4, 4000);
        let r = RunReport {
            committed: 10,
            recoveries: 1,
            recovered_iterations: 1,
            last_iteration: Some(MtxId(10)),
            coa_pages_served: 3,
            stats,
            elapsed: Duration::from_secs(2),
            ..empty_report()
        };
        assert_eq!(r.total_iterations(), 11);
        assert!((r.bandwidth_bps() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_has_zero_bandwidth() {
        let r = empty_report();
        assert_eq!(r.bandwidth_bps(), 0.0);
    }

    #[test]
    fn stage_latency_accessors_read_the_trace() {
        let w = Role::Worker(0);
        let mut r = empty_report();
        for (i, (begin, end)) in [(0u64, 80u64), (100, 220), (300, 390)].iter().enumerate() {
            r.trace.push(TraceEvent {
                role: w,
                mtx: Some(MtxId(i as u64)),
                attempt: 0,
                stage: Some(StageId(0)),
                kind: TraceKind::SubTxBegin,
                at_us: *begin,
            });
            r.trace.push(TraceEvent {
                role: w,
                mtx: Some(MtxId(i as u64)),
                attempt: 0,
                stage: Some(StageId(0)),
                kind: TraceKind::SubTxEnd,
                at_us: *end,
            });
        }
        // Durations 80, 120, 90 -> p50 is the middle one, within the
        // histogram's 12.5% bucket resolution.
        let p50 = r.stage_p50_us(StageId(0)) as f64;
        assert!((p50 - 90.0).abs() / 90.0 < 0.13, "p50 {p50}");
        let p99 = r.stage_p99_us(StageId(0)) as f64;
        assert!((p99 - 120.0).abs() / 120.0 < 0.13, "p99 {p99}");
        // Untraced stage reads as zero.
        assert_eq!(r.stage_p50_us(StageId(7)), 0);
    }

    #[test]
    fn registry_export_has_run_and_fabric_metrics() {
        let r = empty_report();
        let reg = Registry::new();
        r.to_registry(&reg);
        let dump = reg.to_jsonl();
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
        assert!(dump.contains(schema::RUN_COMMITTED));
        assert!(dump.contains(schema::RUN_FABRIC_TIMEOUTS));
        assert!(dump.contains(schema::RUN_FAULT_RECOVERIES));
        assert!(dump.contains(schema::RUN_CHANNEL_DOWNS));
        assert!(dump.contains(schema::FABRIC_SENT_BYTES));
        assert!(dump.contains(schema::VALPLANE_BYTES_POST));
        assert!(dump.contains(schema::COA_CACHE_HITS));
    }

    #[test]
    fn valplane_merge_sums_and_block_fill_averages() {
        let mut a = ValPlaneStats {
            records_pre: 100,
            records_post: 10,
            bytes_pre: 3200,
            bytes_post: 900,
            records_filtered: 20,
            blocks: 4,
            block_records: 80,
            cache_hits: 3,
            cache_misses: 2,
            cache_stale: 1,
        };
        let b = ValPlaneStats {
            records_pre: 50,
            blocks: 1,
            block_records: 20,
            ..ValPlaneStats::default()
        };
        a.merge(&b);
        assert_eq!(a.records_pre, 150);
        assert_eq!(a.blocks, 5);
        assert!((a.block_fill() - 20.0).abs() < 1e-9);
        assert_eq!(ValPlaneStats::default().block_fill(), 0.0);
    }

    #[test]
    fn conflict_pages_aggregate_sorted_and_deduped() {
        let mut r = empty_report();
        r.shard_stats = vec![
            ShardStats {
                conflicts: 3,
                conflict_pages: vec![9, 2, 9],
                ..ShardStats::default()
            },
            ShardStats {
                conflicts: 1,
                conflict_pages: vec![5],
                ..ShardStats::default()
            },
        ];
        assert_eq!(r.conflict_pages(), vec![2, 5, 9]);
        assert!(empty_report().conflict_pages().is_empty());
    }

    #[test]
    fn registry_export_labels_each_shard() {
        let mut r = empty_report();
        r.shard_stats = vec![
            ShardStats {
                validated: 5,
                conflicts: 1,
                busy_ppm: 250_000,
                ..ShardStats::default()
            },
            ShardStats {
                validated: 7,
                ..ShardStats::default()
            },
        ];
        let reg = Registry::new();
        r.to_registry(&reg);
        let dump = reg.to_jsonl();
        for line in dump.lines() {
            dsmtx_obs::json::validate(line).unwrap();
        }
        assert!(dump.contains(schema::SHARD_VALIDATED));
        assert!(dump.contains(schema::SHARD_OCCUPANCY_PPM));
        assert!(dump.contains(schema::SHARD_REPLAY_LAG_US));
        assert!(dump.contains(r#""shard":"0""#) || dump.contains(r#""shard": "0""#));
        assert!(dump.contains(r#""shard":"1""#) || dump.contains(r#""shard": "1""#));
    }
}
