//! Run results and statistics.

use std::time::Duration;

use dsmtx_fabric::FabricStats;
use dsmtx_mem::MasterMem;

use crate::ids::MtxId;
use crate::trace::TraceEvent;

/// Statistics and outcome of one parallel run.
#[derive(Debug)]
pub struct RunReport {
    /// Number of MTXs committed speculatively (excludes iterations
    /// re-executed sequentially during recovery).
    pub committed: u64,
    /// Number of misspeculation recoveries.
    pub recoveries: u64,
    /// Iterations re-executed sequentially by the commit unit.
    pub recovered_iterations: u64,
    /// The last iteration of the loop, if the loop ran at all.
    pub last_iteration: Option<MtxId>,
    /// Copy-On-Access pages served by the commit unit.
    pub coa_pages_served: u64,
    /// Conflicts the try-commit unit detected by value validation
    /// (speculated dependences that manifested).
    pub validation_conflicts: u64,
    /// Misspeculations workers declared explicitly (`mtx_misspec`,
    /// failed control-flow speculation).
    pub worker_misspecs: u64,
    /// Aggregate fabric traffic (all queues).
    pub stats: FabricStats,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Trace events, when tracing was enabled.
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Total iterations whose effects reached committed memory.
    pub fn total_iterations(&self) -> u64 {
        self.committed + self.recovered_iterations
    }

    /// Application-level bandwidth in bytes/second, the Figure 5(a)
    /// metric: total data transferred through DSMTX divided by execution
    /// time.
    pub fn bandwidth_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.stats.bytes() as f64 / secs
        }
    }
}

/// Everything a run returns: the final committed memory plus the report.
#[derive(Debug)]
pub struct RunResult {
    /// Committed memory at loop exit; read program outputs from here.
    pub master: MasterMem,
    /// Statistics and trace.
    pub report: RunReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bandwidth() {
        let stats = FabricStats::new();
        stats.record_packet(4, 4000);
        let r = RunReport {
            committed: 10,
            recoveries: 1,
            recovered_iterations: 1,
            last_iteration: Some(MtxId(10)),
            coa_pages_served: 3,
            validation_conflicts: 0,
            worker_misspecs: 0,
            stats,
            elapsed: Duration::from_secs(2),
            trace: Vec::new(),
        };
        assert_eq!(r.total_iterations(), 11);
        assert!((r.bandwidth_bps() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_has_zero_bandwidth() {
        let r = RunReport {
            committed: 0,
            recoveries: 0,
            recovered_iterations: 0,
            last_iteration: None,
            coa_pages_served: 0,
            validation_conflicts: 0,
            worker_misspecs: 0,
            stats: FabricStats::new(),
            elapsed: Duration::ZERO,
            trace: Vec::new(),
        };
        assert_eq!(r.bandwidth_bps(), 0.0);
    }
}
