//! Identifier newtypes for the MTX runtime.

use std::fmt;

/// A multi-threaded transaction id.
///
/// MTXs wrap loop iterations and are ordered by the sequential iteration
/// order (§3.1): committing MTX *i* before MTX *j* for `i < j` is a runtime
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MtxId(pub u64);

impl MtxId {
    /// The following MTX in commit order.
    pub fn next(self) -> MtxId {
        MtxId(self.0 + 1)
    }
}

impl fmt::Display for MtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mtx{}", self.0)
    }
}

/// A pipeline stage index; stage order is the subTX (program) order within
/// an MTX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StageId(pub u16);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage{}", self.0)
    }
}

/// A worker thread id, dense over `0..n_workers`.
///
/// The try-commit and commit units have their own endpoints and are not
/// workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WorkerId(pub u16);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtx_ordering_follows_iteration_order() {
        assert!(MtxId(0) < MtxId(1));
        assert_eq!(MtxId(3).next(), MtxId(4));
    }

    #[test]
    fn displays() {
        assert_eq!(MtxId(7).to_string(), "mtx7");
        assert_eq!(StageId(1).to_string(), "stage1");
        assert_eq!(WorkerId(2).to_string(), "worker2");
    }
}
