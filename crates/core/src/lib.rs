//! # DSMTX — Distributed Software Multi-threaded Transactional memory
//!
//! A software-only runtime that enables both thread-level speculation
//! (TLS) and speculative decoupled software pipelining (Spec-DSWP) on
//! machines *without* shared memory, reproducing Kim, Raman, Liu, Lee &
//! August, "Scalable Speculative Parallelization on Commodity Clusters"
//! (MICRO 2010).
//!
//! ## The model
//!
//! A parallelized loop iteration is a **Multi-threaded Transaction
//! (MTX)**; each pipeline stage's slice of the iteration is a **subTX**,
//! ordered by sequential program order. Workers execute subTXs in private
//! memories (no sharing); uncommitted stores are explicitly forwarded to
//! later subTXs; a **try-commit unit** validates every speculative load
//! against the value the program order actually produces; a **commit
//! unit** owns committed memory, serves Copy-On-Access page transfers, and
//! applies validated MTX write-sets atomically in iteration order. On
//! misspeculation, a barrier/flush/re-execute protocol (§4.3) rolls the
//! system back.
//!
//! ## Quick start
//!
//! Parallelize a two-stage pipeline that squares numbers and sums them:
//!
//! ```
//! use std::sync::Arc;
//! use dsmtx::{
//!     IterOutcome, MtxId, MtxSystem, Program, StageId, StageKind, SystemConfig,
//! };
//! use dsmtx_mem::MasterMem;
//! use dsmtx_uva::{OwnerId, RegionAllocator, VAddr};
//!
//! // Pre-loop sequential state: an input array and a sum cell, owned by
//! // the commit unit (owner 0).
//! let mut heap = RegionAllocator::new(OwnerId(0));
//! let input = heap.alloc_words(8)?;
//! let sum = heap.alloc_words(1)?;
//! let mut master = MasterMem::new();
//! for i in 0..8 {
//!     master.write(input.add_words(i), i + 1);
//! }
//!
//! // Stage 0 (parallel): square the element. Stage 1 (sequential): sum.
//! let mut cfg = SystemConfig::new();
//! cfg.stage(StageKind::Parallel { replicas: 2 })
//!     .stage(StageKind::Sequential);
//! let system = MtxSystem::new(&cfg)?;
//!
//! let square = Arc::new(move |ctx: &mut dsmtx::WorkerCtx, mtx: MtxId| {
//!     let x = ctx.read(input.add_words(mtx.0))?;
//!     ctx.produce(x * x);
//!     Ok(IterOutcome::Continue)
//! });
//! let accumulate = Arc::new(move |ctx: &mut dsmtx::WorkerCtx, _mtx: MtxId| {
//!     let sq = ctx.consume();
//!     let cur = ctx.read(sum)?;
//!     ctx.write(sum, cur + sq)?;
//!     Ok(IterOutcome::Continue)
//! });
//!
//! let result = system.run(Program {
//!     master,
//!     stages: vec![square, accumulate],
//!     recovery: Box::new(|_, _| IterOutcome::Continue),
//!     on_commit: None,
//!     iteration_limit: Some(8),
//! })?;
//! assert_eq!(result.master.read(sum), (1..=8u64).map(|x| x * x).sum());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod commit;
pub mod config;
pub mod control;
pub mod footprint;
pub mod ids;
pub mod poll;
pub mod program;
pub mod report;
pub mod spans;
pub mod system;
pub mod trace;
pub mod trycommit;
pub mod wire;
pub mod worker;

pub use analysis::{CriticalPath, TraceAnalysis};
pub use config::{ConfigError, FaultConfig, FaultTarget, PipelineShape, StageKind, SystemConfig};
pub use control::{ControlPlane, Interrupt, Status};
pub use footprint::{AccessMode, FootprintFn, Region, StageRole, StageSpec};
pub use ids::{MtxId, StageId, WorkerId};
pub use program::{CommitHook, IterOutcome, Program, RecoveryFn, StageFn};
pub use report::{RunReport, RunResult, ShardStats, ValPlaneStats};
pub use spans::{build_spans, chrome_spans};
pub use system::{worker_owner, MtxSystem, RunError};
pub use trace::{Role, TraceEvent, TraceKind, TraceSink, DEFAULT_TRACE_CAPACITY};
pub use trycommit::ConflictRecord;
pub use worker::{AccessFilter, WorkerCtx};
