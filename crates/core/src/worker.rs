//! Worker threads: the Table-1 running operations.
//!
//! A worker executes the subTXs of one pipeline stage. Each iteration it:
//!
//! 1. **`begin`** (`mtx_begin`): receives the data frame of this iteration
//!    from every earlier stage — applying forwarded uncommitted stores to
//!    its private memory and buffering `mtx_produce`d user values — plus
//!    the ring frame from its predecessor replica when the stage is a
//!    synchronization ring (TLS / DOACROSS).
//! 2. Runs the stage body, which speculatively reads/writes DSMTX memory
//!    through this context. First touches of protected pages trigger
//!    Copy-On-Access round trips to the commit unit.
//! 3. **`end`** (`mtx_end`): sends the subTX's ordered access stream to the
//!    try-commit unit, its store set to the commit unit, and a data frame
//!    (forwards + produces) to the executor of this iteration in every
//!    later stage (`mtx_writeAll` semantics).
//!
//! Every blocking point polls the control plane so the worker can unwind
//! into the §4.3 recovery rendezvous or terminate.

use std::collections::VecDeque;

use std::time::Duration;

use dsmtx_fabric::{FabricError, RecvPort, SendPort};
use dsmtx_mem::{shard_of, Page, SpecMem};
use dsmtx_uva::{PageId, RegionAllocator, VAddr};

use crate::config::PipelineShape;
use crate::control::{ControlPlane, Interrupt};
use crate::ids::{MtxId, StageId, WorkerId};
use crate::poll::{wait_for, wait_for_deadline};
use crate::program::{IterOutcome, StageFn};
use crate::trace::{Role, TraceKind, TraceSink};
use crate::wire::Msg;

/// The execution context handed to stage bodies.
///
/// All program state must flow through this context (speculative memory,
/// produces/consumes); Rust state captured by the stage closure does not
/// roll back on misspeculation.
pub struct WorkerCtx {
    pub(crate) worker: WorkerId,
    pub(crate) stage: StageId,
    pub(crate) shape: PipelineShape,
    pub(crate) ctrl: ControlPlane,
    pub(crate) trace: TraceSink,
    role: Role,
    epoch: u64,
    /// Receive deadline under fault injection (`None` = wait forever).
    /// Converts a peer silenced by faults into [`Interrupt::FabricTimeout`].
    data_timeout: Option<Duration>,

    spec: SpecMem,
    heap: RegionAllocator,

    /// Outgoing data queues to later-stage workers (plus the ring
    /// successor, which is in the same stage).
    out: Vec<(WorkerId, SendPort<Msg>)>,
    /// Incoming data queues from earlier-stage workers (plus the ring
    /// predecessor).
    inn: Vec<(WorkerId, RecvPort<Msg>)>,
    /// Validation streams, one per try-commit shard: each access record
    /// goes to the shard owning its page ([`shard_of`]); the
    /// `SubTxBegin`/`SubTxEnd` framing goes to every shard so all replay
    /// cursors advance in lockstep.
    val_out: Vec<SendPort<Msg>>,
    /// Store stream, events, and COA requests to the commit unit.
    cu_out: SendPort<Msg>,
    /// COA replies from the commit unit.
    coa_in: RecvPort<Msg>,

    // ---- per-iteration state ----
    cur: Option<MtxId>,
    /// Buffered user values per producing stage.
    users: Vec<VecDeque<u64>>,
    /// Buffered ring (synchronized-dependence) values for this iteration.
    ring_in_vals: VecDeque<u64>,
    /// Stores to forward to later stages at `end` (from [`WorkerCtx::write`]).
    forwards: Vec<(VAddr, u64)>,
    /// Stores to forward to one specific later stage
    /// (from [`WorkerCtx::write_to_stage`]).
    targeted_forwards: Vec<(StageId, VAddr, u64)>,
    /// User values produced this iteration, with their target stage.
    produces: Vec<(StageId, u64)>,
    /// Ring values produced this iteration for the successor iteration.
    ring_produces: Vec<u64>,
    /// Ring loopback when the ring stage has a single replica.
    ring_loopback: VecDeque<u64>,
    /// After a recovery at boundary *b*, iteration *b + 1* has no ring
    /// frame (its producer, iteration *b*, was re-executed by the commit
    /// unit): the executor of *b + 1* must skip the ring receive and
    /// re-derive synchronized state from committed memory.
    ring_skip: Option<MtxId>,
}

/// Everything needed to construct a [`WorkerCtx`]; assembled by the system
/// builder.
pub(crate) struct WorkerWiring {
    pub worker: WorkerId,
    pub shape: PipelineShape,
    pub ctrl: ControlPlane,
    pub trace: TraceSink,
    pub heap: RegionAllocator,
    pub out: Vec<(WorkerId, SendPort<Msg>)>,
    pub inn: Vec<(WorkerId, RecvPort<Msg>)>,
    pub val_out: Vec<SendPort<Msg>>,
    pub cu_out: SendPort<Msg>,
    pub coa_in: RecvPort<Msg>,
}

impl WorkerCtx {
    pub(crate) fn new(w: WorkerWiring) -> Self {
        let stage = w.shape.stage_of(w.worker);
        let n_stages = w.shape.n_stages() as usize;
        let epoch = w.ctrl.epoch();
        let data_timeout = w.shape.recv_deadline();
        WorkerCtx {
            role: Role::Worker(w.worker.0 as u32),
            worker: w.worker,
            stage,
            shape: w.shape,
            ctrl: w.ctrl,
            trace: w.trace,
            epoch,
            data_timeout,
            spec: SpecMem::new(),
            heap: w.heap,
            out: w.out,
            inn: w.inn,
            val_out: w.val_out,
            cu_out: w.cu_out,
            coa_in: w.coa_in,
            cur: None,
            users: vec![VecDeque::new(); n_stages],
            ring_in_vals: VecDeque::new(),
            forwards: Vec::new(),
            targeted_forwards: Vec::new(),
            produces: Vec::new(),
            ring_produces: Vec::new(),
            ring_loopback: VecDeque::new(),
            ring_skip: None,
        }
    }

    /// This worker's id.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The pipeline stage this worker executes.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// Replica index within the stage.
    pub fn replica(&self) -> u16 {
        self.shape.replica_of(self.worker)
    }

    /// Replica count of this worker's stage.
    pub fn replicas(&self) -> u16 {
        self.shape.kind(self.stage).replicas()
    }

    /// The worker's private UVA allocator — the hooked `malloc`/`free` of
    /// §3.3. Allocation is purely local.
    pub fn heap(&mut self) -> &mut RegionAllocator {
        &mut self.heap
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Speculative load (validated by the try-commit unit).
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn read(&mut self, addr: VAddr) -> Result<u64, Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        spec.read(addr, |page| {
            coa_fetch(cu_out, coa_in, ctrl, epoch, *data_timeout, page)
        })
    }

    /// Unvalidated load, for data the plan knows cannot conflict (e.g.
    /// read-only after loop entry, or this worker's private scratch). This
    /// is the manual-parallelization bandwidth optimization; misuse turns
    /// detectable misspeculation into silent wrong answers.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn read_private(&mut self, addr: VAddr) -> Result<u64, Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        spec.read_unlogged(addr, |page| {
            coa_fetch(cu_out, coa_in, ctrl, epoch, *data_timeout, page)
        })
    }

    /// Speculative store with `mtx_writeAll` semantics: validated,
    /// committed, and forwarded to all later subTXs of this MTX.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        self.write_no_forward(addr, value)?;
        self.forwards.push((addr, value));
        Ok(())
    }

    /// Speculative store forwarded only to one later stage's subTX of
    /// this MTX (plus validation and commit) — `mtx_writeTo` with a stage
    /// destination. A bandwidth optimization over [`WorkerCtx::write`]
    /// when only one stage reads the value.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    ///
    /// # Panics
    ///
    /// Panics unless `stage` is strictly later than this worker's stage.
    pub fn write_to_stage(
        &mut self,
        stage: StageId,
        addr: VAddr,
        value: u64,
    ) -> Result<(), Interrupt> {
        assert!(
            stage > self.stage,
            "write_to_stage must target a later stage"
        );
        assert!(stage.0 < self.shape.n_stages(), "no such stage");
        self.write_no_forward(addr, value)?;
        self.targeted_forwards.push((stage, addr, value));
        Ok(())
    }

    /// Speculative store that is validated and committed but *not*
    /// forwarded to later stages (the plan knows no later subTX of this
    /// MTX reads it) — the `mtx_writeTo(commit)` pattern.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write_no_forward(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        spec.write(addr, value, |page| {
            coa_fetch(cu_out, coa_in, ctrl, epoch, *data_timeout, page)
        })
    }

    /// Private store: stays in this worker's memory version only. Used for
    /// per-worker scratch (the memory-versioning optimization); rolled
    /// back on recovery like everything else.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write_private(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        spec.write_unlogged(addr, value, |page| {
            coa_fetch(cu_out, coa_in, ctrl, epoch, *data_timeout, page)
        })
    }

    // ------------------------------------------------------------------
    // Pipeline data
    // ------------------------------------------------------------------

    /// Sends a user value to the next stage's subTX of this iteration
    /// (`mtx_produce`).
    ///
    /// # Panics
    ///
    /// Panics when called from the last stage.
    pub fn produce(&mut self, value: u64) {
        let next = StageId(self.stage.0 + 1);
        assert!(
            next.0 < self.shape.n_stages(),
            "produce from the last stage"
        );
        self.produces.push((next, value));
    }

    /// Sends a user value to a specific later stage.
    ///
    /// # Panics
    ///
    /// Panics unless `stage` is strictly later than this worker's stage.
    pub fn produce_to(&mut self, stage: StageId, value: u64) {
        assert!(stage > self.stage, "produce_to must target a later stage");
        assert!(stage.0 < self.shape.n_stages(), "no such stage");
        self.produces.push((stage, value));
    }

    /// Consumes a value produced by the previous stage (`mtx_consume`).
    ///
    /// # Panics
    ///
    /// Panics when no value is available — produce/consume counts are part
    /// of the parallelization plan and must match.
    pub fn consume(&mut self) -> u64 {
        assert!(self.stage.0 > 0, "consume at the first stage");
        self.consume_from(StageId(self.stage.0 - 1))
    }

    /// Consumes a value produced by `stage` for this iteration.
    ///
    /// # Panics
    ///
    /// Panics when no value is available from that stage.
    pub fn consume_from(&mut self, stage: StageId) -> u64 {
        self.try_consume_from(stage)
            .unwrap_or_else(|| panic!("no value from {stage} in {:?}", self.cur))
    }

    /// Consumes a value from `stage` if one was produced for this
    /// iteration.
    pub fn try_consume_from(&mut self, stage: StageId) -> Option<u64> {
        self.users[stage.0 as usize].pop_front()
    }

    /// Forwards a synchronized cross-iteration value to the next iteration
    /// (ring stages only: the TLS/DOACROSS mechanism).
    ///
    /// # Panics
    ///
    /// Panics when this stage is not the declared ring stage.
    pub fn sync_produce(&mut self, value: u64) {
        assert_eq!(
            self.shape.ring_stage(),
            Some(self.stage),
            "sync_produce outside the ring stage"
        );
        self.ring_produces.push(value);
    }

    /// Takes the synchronized values forwarded by the previous iteration
    /// (empty for iteration 0).
    pub fn sync_take(&mut self) -> Vec<u64> {
        self.ring_in_vals.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // Speculation control
    // ------------------------------------------------------------------

    /// Declares this iteration misspeculated (`mtx_misspec`) — e.g. failed
    /// control-flow speculation — notifies the commit unit, and waits for
    /// the recovery (or termination) interrupt.
    ///
    /// # Errors
    ///
    /// Always returns an interrupt; call as `return ctx.misspec();`.
    pub fn misspec<T>(&mut self) -> Result<T, Interrupt> {
        let mtx = self.cur.expect("misspec outside an iteration");
        // Abort the subTX: nothing of it may reach the other units.
        self.spec.drain_log();
        self.forwards.clear();
        self.targeted_forwards.clear();
        self.produces.clear();
        self.ring_produces.clear();
        self.cu_out
            .produce(Msg::WorkerMisspec { mtx })
            .map_err(classify)?;
        flush_port(&self.ctrl, &mut self.epoch, &mut self.cu_out)?;
        // Block until the commit unit orchestrates recovery.
        wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<T>))
    }

    // ------------------------------------------------------------------
    // Iteration lifecycle (used by the worker main loop; public for
    // custom executors)
    // ------------------------------------------------------------------

    /// Enters the subTX of `mtx` (`mtx_begin`): refreshes memory with the
    /// uncommitted stores of earlier subTXs and buffers their produces.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn begin(&mut self, mtx: MtxId) -> Result<(), Interrupt> {
        self.cur = Some(mtx);
        self.trace.record(
            self.role,
            Some(mtx),
            Some(self.stage),
            TraceKind::SubTxBegin,
        );
        for s in 0..self.stage.0 {
            let src = self.shape.executor(StageId(s), mtx);
            self.recv_frame(src, mtx, false)?;
        }
        if self.shape.ring_stage() == Some(self.stage) && mtx.0 >= 1 {
            if self.ring_skip.take() == Some(mtx) {
                // The producing iteration was re-executed sequentially
                // during recovery; synchronized state must be re-derived
                // from committed memory (`sync_take` will be empty).
            } else {
                let src = self.shape.executor(self.stage, MtxId(mtx.0 - 1));
                if src == self.worker {
                    // Single-replica ring: values loop back locally.
                    self.ring_in_vals = std::mem::take(&mut self.ring_loopback);
                } else {
                    self.recv_frame(src, mtx, true)?;
                }
            }
        }
        Ok(())
    }

    /// Exits the subTX of `mtx` (`mtx_end`): ships the access stream to
    /// try-commit, the store set to commit, data frames to later stages,
    /// and the ring frame to the successor iteration.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn end(&mut self, mtx: MtxId, outcome: IterOutcome) -> Result<(), Interrupt> {
        debug_assert_eq!(self.cur, Some(mtx), "end without matching begin");
        let records = self.spec.drain_log();
        let stage = self.stage;

        // Validation streams (ordered loads + stores), split across the
        // try-commit shards by page: every shard gets the framing so its
        // replay cursor advances, each record goes only to the shard
        // owning its page. At one shard this is the original single
        // stream verbatim.
        let n_shards = self.val_out.len();
        for port in &mut self.val_out {
            send(port, Msg::SubTxBegin { mtx, stage })?;
        }
        for r in &records {
            let msg = match r.kind {
                dsmtx_mem::spec::AccessKind::Load => Msg::Load {
                    addr: r.addr.raw(),
                    value: r.value,
                },
                dsmtx_mem::spec::AccessKind::Store => Msg::Store {
                    addr: r.addr.raw(),
                    value: r.value,
                },
            };
            send(&mut self.val_out[shard_of(r.addr.page(), n_shards)], msg)?;
        }
        for port in &mut self.val_out {
            send(port, Msg::SubTxEnd { mtx, stage })?;
        }
        for port in &mut self.val_out {
            flush_port(&self.ctrl, &mut self.epoch, port)?;
        }

        // Store stream to the commit unit (group transaction commit input).
        send(&mut self.cu_out, Msg::SubTxBegin { mtx, stage })?;
        for (addr, value) in SpecMem::stores_of(&records) {
            send(
                &mut self.cu_out,
                Msg::Store {
                    addr: addr.raw(),
                    value,
                },
            )?;
        }
        send(
            &mut self.cu_out,
            Msg::SubTxDone {
                mtx,
                stage,
                exit: outcome == IterOutcome::Exit,
            },
        )?;
        flush_port(&self.ctrl, &mut self.epoch, &mut self.cu_out)?;

        // Data frames to the executor of this iteration in each later
        // stage: forwarded stores + user values.
        let forwards = std::mem::take(&mut self.forwards);
        let targeted = std::mem::take(&mut self.targeted_forwards);
        let produces = std::mem::take(&mut self.produces);
        for t in (stage.0 + 1)..self.shape.n_stages() {
            let t = StageId(t);
            let dst = self.shape.executor(t, mtx);
            let Self {
                out, ctrl, epoch, ..
            } = self;
            let port = port_to(out, dst);
            send(port, Msg::FrameBegin { mtx })?;
            for &(addr, value) in &forwards {
                send(
                    port,
                    Msg::Forward {
                        addr: addr.raw(),
                        value,
                    },
                )?;
            }
            for &(ts, addr, value) in targeted.iter().filter(|(ts, _, _)| *ts == t) {
                debug_assert_eq!(ts, t);
                send(
                    port,
                    Msg::Forward {
                        addr: addr.raw(),
                        value,
                    },
                )?;
            }
            for &(ps, value) in produces.iter().filter(|(ps, _)| *ps == t) {
                debug_assert_eq!(ps, t);
                send(port, Msg::User { value })?;
            }
            send(port, Msg::FrameEnd { mtx })?;
            flush_port(ctrl, epoch, port)?;
        }

        // Ring frame for the successor iteration.
        if self.shape.ring_stage() == Some(stage) {
            let ring_values = std::mem::take(&mut self.ring_produces);
            match self.shape.ring_next(self.worker) {
                None => self.ring_loopback = ring_values.into(),
                Some(dst) => {
                    let next_mtx = MtxId(mtx.0 + 1);
                    let Self {
                        out, ctrl, epoch, ..
                    } = self;
                    let port = port_to(out, dst);
                    send(port, Msg::FrameBegin { mtx: next_mtx })?;
                    for value in ring_values {
                        send(port, Msg::User { value })?;
                    }
                    send(port, Msg::FrameEnd { mtx: next_mtx })?;
                    flush_port(ctrl, epoch, port)?;
                }
            }
        }

        // Reset per-iteration state.
        for q in &mut self.users {
            q.clear();
        }
        self.ring_in_vals.clear();
        self.trace
            .record(self.role, Some(mtx), Some(stage), TraceKind::SubTxEnd);
        self.cur = None;
        Ok(())
    }

    fn recv_frame(&mut self, src: WorkerId, mtx: MtxId, is_ring: bool) -> Result<(), Interrupt> {
        let src_stage = self.shape.stage_of(src).0 as usize;
        let Self {
            inn,
            spec,
            users,
            ring_in_vals,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        let timeout = *data_timeout;
        let port = inn
            .iter_mut()
            .find(|(id, _)| *id == src)
            .map(|(_, p)| p)
            .unwrap_or_else(|| panic!("no data queue from {src}"));

        let first = wait_for_deadline(ctrl, epoch, timeout, || {
            port.try_consume().map_err(classify)
        })?;
        match first {
            Msg::FrameBegin { mtx: m } => {
                assert_eq!(m, mtx, "frame out of order from {src}: got {m}, want {mtx}")
            }
            other => panic!("expected FrameBegin from {src}, got {other:?}"),
        }
        loop {
            let msg = wait_for_deadline(ctrl, epoch, timeout, || {
                port.try_consume().map_err(classify)
            })?;
            match msg {
                Msg::Forward { addr, value } => spec.apply_forwarded(VAddr::from_raw(addr), value),
                Msg::User { value } => {
                    if is_ring {
                        ring_in_vals.push_back(value);
                    } else {
                        users[src_stage].push_back(value);
                    }
                }
                Msg::FrameEnd { mtx: m } => {
                    assert_eq!(m, mtx, "frame end mismatch from {src}");
                    return Ok(());
                }
                other => panic!("unexpected message in frame from {src}: {other:?}"),
            }
        }
    }

    /// Blocks until an interrupt arrives (used when this worker has no
    /// iterations left under an iteration limit).
    pub(crate) fn idle_until_interrupt(&mut self) -> Result<(), Interrupt> {
        wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<()>)).map(|_: ()| ())
    }

    /// Raises a timeout-driven recovery request on the control plane and
    /// blocks until the commit unit answers with a status change. The
    /// request, not the raiser, picks the boundary: the commit unit always
    /// recovers at its next commit so no committed-but-unapplied MTX is
    /// lost.
    pub(crate) fn request_fault_recovery(&mut self) -> Interrupt {
        self.ctrl.raise_fabric_fault();
        match wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<()>)) {
            Ok(()) => unreachable!("step never yields"),
            Err(intr) => intr,
        }
    }

    /// Participates in the §4.3 recovery protocol:
    /// barrier → flush queues → barrier → re-protect heap → barrier.
    ///
    /// `boundary` is the squashed MTX being re-executed by the commit
    /// unit; its successor iteration will have no ring frame.
    pub(crate) fn do_recovery(&mut self, boundary: MtxId) {
        let barrier = self.ctrl.barrier().clone();
        barrier.wait(); // B1: everyone is in recovery mode.
        for (_, port) in &mut self.out {
            port.clear();
        }
        for port in &mut self.val_out {
            port.clear();
        }
        self.cu_out.clear();
        for (_, port) in &mut self.inn {
            port.drain();
        }
        self.coa_in.drain();
        barrier.wait(); // B2: all speculative queue state is gone.
        self.spec.rollback(); // Reinstate heap access protection.
        for q in &mut self.users {
            q.clear();
        }
        self.ring_in_vals.clear();
        self.ring_loopback.clear();
        self.forwards.clear();
        self.targeted_forwards.clear();
        self.produces.clear();
        self.ring_produces.clear();
        self.cur = None;
        // Iteration boundary+1's ring producer was re-executed by the
        // commit unit: its executor must re-derive synchronized state
        // from committed memory instead of waiting for a frame.
        self.ring_skip = Some(boundary.next());
        barrier.wait(); // B3: the commit unit re-executed; recommence.
                        // Force the next poll to re-read the status word.
        self.epoch = u64::MAX;
    }

    /// COA installs performed by this worker so far.
    pub fn coa_faults(&self) -> u64 {
        self.spec.faults_served()
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("worker", &self.worker)
            .field("stage", &self.stage)
            .field("cur", &self.cur)
            .finish_non_exhaustive()
    }
}

/// Maps a fabric failure to the interrupt the runtime handles it with: an
/// exhausted retry budget asks for recovery, anything else means the peer
/// is gone.
pub(crate) fn classify(e: FabricError) -> Interrupt {
    match e {
        FabricError::Timeout => Interrupt::FabricTimeout,
        _ => Interrupt::ChannelDown,
    }
}

/// Buffered, non-blocking enqueue; hard errors on peer death or an
/// exhausted fault-retry budget (an overfull batch flushes eagerly).
fn send(port: &mut SendPort<Msg>, msg: Msg) -> Result<(), Interrupt> {
    port.produce(msg).map_err(classify)
}

/// Interruptible flush: retries while the transport is full or an injected
/// fault consumed the attempt, unwinding on control-plane interrupts, a
/// dead peer, or retry-budget exhaustion.
pub(crate) fn flush_port(
    ctrl: &ControlPlane,
    epoch: &mut u64,
    port: &mut SendPort<Msg>,
) -> Result<(), Interrupt> {
    wait_for(ctrl, epoch, || match port.try_flush() {
        Ok(true) => Ok(Some(())),
        Ok(false) => Ok(None),
        Err(FabricError::Retriable) => Ok(None),
        Err(e) => Err(classify(e)),
    })
}

fn port_to(ports: &mut [(WorkerId, SendPort<Msg>)], dst: WorkerId) -> &mut SendPort<Msg> {
    ports
        .iter_mut()
        .find(|(id, _)| *id == dst)
        .map(|(_, p)| p)
        .unwrap_or_else(|| panic!("no data queue to {dst}"))
}

/// One Copy-On-Access round trip: request the page from the commit unit
/// and wait for the reply (at most one outstanding request per worker, so
/// replies arrive in request order).
fn coa_fetch(
    cu_out: &mut SendPort<Msg>,
    coa_in: &mut RecvPort<Msg>,
    ctrl: &ControlPlane,
    epoch: &mut u64,
    timeout: Option<Duration>,
    page: PageId,
) -> Result<Page, Interrupt> {
    cu_out
        .produce(Msg::CoaRequest { page: page.0 })
        .map_err(classify)?;
    flush_port(ctrl, epoch, cu_out)?;
    let reply = wait_for_deadline(ctrl, epoch, timeout, || {
        coa_in.try_consume().map_err(classify)
    })?;
    match reply {
        Msg::CoaReply { page: p, data } => {
            assert_eq!(p, page.0, "out-of-order COA reply");
            Ok(*data)
        }
        other => panic!("expected CoaReply, got {other:?}"),
    }
}

/// The worker thread body: iterate over assigned MTXs, handling recovery
/// and termination.
pub(crate) fn worker_main(mut ctx: WorkerCtx, stage_fn: StageFn, limit: Option<u64>) -> WorkerCtx {
    let mut next = ctx.shape.next_assigned(ctx.worker, MtxId(0));
    loop {
        let exhausted = limit.is_some_and(|l| next.0 >= l);
        let result = if exhausted {
            ctx.idle_until_interrupt()
        } else {
            run_iteration(&mut ctx, next, &stage_fn)
        };
        match result {
            Ok(()) => next = ctx.shape.next_assigned(ctx.worker, next.next()),
            Err(Interrupt::Recovery { boundary }) => {
                ctx.do_recovery(boundary);
                next = ctx.shape.next_assigned(ctx.worker, boundary.next());
            }
            Err(Interrupt::Terminate) => break,
            Err(Interrupt::ChannelDown) => {
                // A peer thread is gone; convert into a typed shutdown so
                // every other thread unwinds instead of hanging.
                ctx.ctrl.report_channel_down();
                break;
            }
            Err(Interrupt::FabricTimeout) => {
                // A transfer exhausted its retry budget (or a receive
                // starved past its deadline). Ask the commit unit for a
                // recovery round and rendezvous.
                match ctx.request_fault_recovery() {
                    Interrupt::Recovery { boundary } => {
                        ctx.do_recovery(boundary);
                        next = ctx.shape.next_assigned(ctx.worker, boundary.next());
                    }
                    Interrupt::Terminate => break,
                    Interrupt::ChannelDown => {
                        ctx.ctrl.report_channel_down();
                        break;
                    }
                    Interrupt::FabricTimeout => {
                        unreachable!("deadline-free wait cannot time out")
                    }
                }
            }
        }
    }
    ctx
}

fn run_iteration(ctx: &mut WorkerCtx, mtx: MtxId, stage_fn: &StageFn) -> Result<(), Interrupt> {
    ctx.begin(mtx)?;
    let outcome = stage_fn(ctx, mtx)?;
    ctx.end(mtx, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_fabric::{
        channel, channel_faulted, CostModel, FabricStats, FaultPlan, FaultRates, RetryPolicy,
    };

    #[test]
    fn flush_port_reports_dead_peer_as_channel_down() {
        let ctrl = ControlPlane::new(1);
        let mut epoch = ctrl.epoch();
        // Batch larger than what we enqueue: produce only buffers, the
        // flush discovers the dropped consumer.
        let (mut tx, rx) = channel::<Msg>(8, 4);
        drop(rx);
        tx.produce(Msg::CoaRequest { page: 0 }).unwrap();
        let r = flush_port(&ctrl, &mut epoch, &mut tx);
        assert_eq!(r.unwrap_err(), Interrupt::ChannelDown);
    }

    #[test]
    fn flush_port_converts_exhausted_retries_into_fabric_timeout() {
        let ctrl = ControlPlane::new(1);
        let mut epoch = ctrl.epoch();
        let plan = FaultPlan::new(7, FaultRates::only_drop(1.0));
        let (mut tx, _rx) = channel_faulted::<Msg>(
            8,
            4,
            CostModel::FREE,
            FabricStats::new(),
            Some(plan.injector(0)),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_us: 1,
                max_backoff_us: 1,
            },
        );
        tx.produce(Msg::CoaRequest { page: 0 }).unwrap();
        let r = flush_port(&ctrl, &mut epoch, &mut tx);
        assert_eq!(r.unwrap_err(), Interrupt::FabricTimeout);
    }

    #[test]
    fn classify_maps_fabric_errors() {
        assert_eq!(classify(FabricError::Timeout), Interrupt::FabricTimeout);
        assert_eq!(classify(FabricError::Disconnected), Interrupt::ChannelDown);
        assert_eq!(classify(FabricError::Retriable), Interrupt::ChannelDown);
    }
}
