//! Worker threads: the Table-1 running operations.
//!
//! A worker executes the subTXs of one pipeline stage. Each iteration it:
//!
//! 1. **`begin`** (`mtx_begin`): receives the data frame of this iteration
//!    from every earlier stage — applying forwarded uncommitted stores to
//!    its private memory and buffering `mtx_produce`d user values — plus
//!    the ring frame from its predecessor replica when the stage is a
//!    synchronization ring (TLS / DOACROSS).
//! 2. Runs the stage body, which speculatively reads/writes DSMTX memory
//!    through this context. First touches of protected pages trigger
//!    Copy-On-Access round trips to the commit unit.
//! 3. **`end`** (`mtx_end`): sends the subTX's ordered access stream to the
//!    try-commit unit, its store set to the commit unit, and a data frame
//!    (forwards + produces) to the executor of this iteration in every
//!    later stage (`mtx_writeAll` semantics).
//!
//! Every blocking point polls the control plane so the worker can unwind
//! into the §4.3 recovery rendezvous or terminate.

use std::collections::VecDeque;

use std::time::Duration;

use dsmtx_fabric::{FabricError, RecvPort, SendPort};
use dsmtx_mem::{route, AccessKind, AccessRecord, Page, PageCache, ShardMap, SpecMem};
use dsmtx_uva::{PageId, RegionAllocator, VAddr};

use crate::config::PipelineShape;
use crate::control::{ControlPlane, Interrupt};
use crate::ids::{MtxId, StageId, WorkerId};
use crate::poll::{wait_for, wait_for_deadline};
use crate::program::{IterOutcome, StageFn};
use crate::report::ValPlaneStats;
use crate::trace::{Role, TraceKind, TraceSink};
use crate::wire::{AccessBlock, Msg, EPOCH_NONE};

/// Fabric accounting charges one enum slot per queued item; used to state
/// what the unpacked per-record encoding would have cost on the wire.
const ITEM_BYTES: u64 = std::mem::size_of::<Msg>() as u64;

/// A write-combining store buffer over one subTX's access log.
///
/// Filters the program-ordered access stream down to the records the
/// validation and commit planes actually need, without changing any
/// verdict:
///
/// * a **load** survives only as the *first* access to its address — a
///   repeat load re-observes the same private page (nothing else writes
///   it inside the subTX), so replay would check the identical value
///   against the identical image state; a load *after a local store*
///   observes the forwarded store value, which replay reproduces
///   trivially;
/// * **stores** to the same address coalesce into the first store's
///   stream position carrying the *final* value. Every load of that
///   address at or after the first store was suppressed by the rule
///   above, so no surviving record observes an intermediate value, and
///   the end-of-stream image (what group commit applies) is unchanged.
///
/// Open-addressed table keyed on raw address bits, generation-stamped so
/// reset is O(1) between subTXs.
///
/// Public because the dependence analyzer (`dsmtx-analyze`) reuses it to
/// compute the validation-visible view of a recorded sequential access
/// stream — the same records the runtime would actually ship.
pub struct AccessFilter {
    slots: Vec<FilterSlot>,
    /// Current generation; a slot with a different stamp is empty.
    gen: u64,
    /// `slots.len() - 1`; length is a power of two.
    mask: usize,
}

#[derive(Clone, Copy)]
struct FilterSlot {
    key: u64,
    gen: u64,
    /// A load of `key` already survived (or was made redundant by a
    /// store).
    loaded: bool,
    /// Output index of the surviving store to `key`, `u32::MAX` if none.
    store_at: u32,
}

const NO_STORE: u32 = u32::MAX;

impl AccessFilter {
    /// A fresh filter (reusable across subTXs/iterations).
    pub fn new() -> Self {
        AccessFilter {
            slots: vec![
                FilterSlot {
                    key: 0,
                    gen: 0,
                    loaded: false,
                    store_at: NO_STORE,
                };
                64
            ],
            gen: 0,
            mask: 63,
        }
    }

    /// Grows the table to hold at least `2 * n` keys at < 50% load.
    fn reserve(&mut self, n: usize) {
        let want = (2 * n.max(32)).next_power_of_two();
        if want > self.slots.len() {
            self.slots = vec![
                FilterSlot {
                    key: 0,
                    gen: 0,
                    loaded: false,
                    store_at: NO_STORE,
                };
                want
            ];
            self.mask = want - 1;
            self.gen = 0;
        }
    }

    #[inline]
    fn slot_of(&mut self, key: u64) -> &mut FilterSlot {
        // Fibonacci-style multiplicative hash, taking high bits so that
        // word-aligned addresses (low 3 bits zero) still spread.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let mut i = h as usize & self.mask;
        loop {
            let s = &self.slots[i];
            if s.gen != self.gen || s.key == key {
                return &mut self.slots[i];
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Filters `records` into `out` (cleared first). Returns the number
    /// of suppressed records.
    pub fn filter_into(&mut self, records: &[AccessRecord], out: &mut Vec<AccessRecord>) -> u64 {
        out.clear();
        self.reserve(records.len());
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: old stamps would read as live.
            for s in &mut self.slots {
                s.gen = u64::MAX;
            }
            self.gen = 1;
        }
        let gen = self.gen;
        let mut filtered = 0u64;
        for r in records {
            let key = r.addr.raw();
            let s = self.slot_of(key);
            if s.gen != gen {
                *s = FilterSlot {
                    key,
                    gen,
                    loaded: false,
                    store_at: NO_STORE,
                };
            }
            match r.kind {
                AccessKind::Load => {
                    if s.loaded || s.store_at != NO_STORE {
                        filtered += 1;
                    } else {
                        s.loaded = true;
                        out.push(*r);
                    }
                }
                AccessKind::Store => {
                    if s.store_at == NO_STORE {
                        s.store_at = out.len() as u32;
                        out.push(*r);
                    } else {
                        out[s.store_at as usize].value = r.value;
                        filtered += 1;
                    }
                }
            }
        }
        filtered
    }
}

impl Default for AccessFilter {
    fn default() -> Self {
        Self::new()
    }
}

/// The execution context handed to stage bodies.
///
/// All program state must flow through this context (speculative memory,
/// produces/consumes); Rust state captured by the stage closure does not
/// roll back on misspeculation.
pub struct WorkerCtx {
    pub(crate) worker: WorkerId,
    pub(crate) stage: StageId,
    pub(crate) shape: PipelineShape,
    pub(crate) ctrl: ControlPlane,
    pub(crate) trace: TraceSink,
    role: Role,
    epoch: u64,
    /// Receive deadline under fault injection (`None` = wait forever).
    /// Converts a peer silenced by faults into [`Interrupt::FabricTimeout`].
    data_timeout: Option<Duration>,

    spec: SpecMem,
    heap: RegionAllocator,

    /// Outgoing data queues to later-stage workers (plus the ring
    /// successor, which is in the same stage).
    out: Vec<(WorkerId, SendPort<Msg>)>,
    /// Incoming data queues from earlier-stage workers (plus the ring
    /// predecessor).
    inn: Vec<(WorkerId, RecvPort<Msg>)>,
    /// Validation streams, one per try-commit shard: each access record
    /// goes to the shard owning its page ([`route`]); the
    /// `SubTxBegin`/`SubTxEnd` framing goes to every shard so all replay
    /// cursors advance in lockstep.
    val_out: Vec<SendPort<Msg>>,
    /// Profile-guided page→shard overrides from the shared shape; pages
    /// outside the map route by the hash partition. Identical on every
    /// worker, so the partition stays agreed-upon without communication.
    shard_map: Option<ShardMap>,
    /// Store stream, events, and COA requests to the commit unit.
    cu_out: SendPort<Msg>,
    /// COA replies from the commit unit.
    coa_in: RecvPort<Msg>,

    /// Packed validation/commit-plane encoding on (the default) or the
    /// legacy per-record encoding (differential baseline).
    compaction: bool,
    /// Write-combining store buffer filtering each subTX's access log.
    filter: AccessFilter,
    /// Scratch: the filtered access stream of the current subTX.
    filtered: Vec<AccessRecord>,
    /// Scratch: one packed block per try-commit shard.
    val_blocks: Vec<AccessBlock>,
    /// Scratch: the packed commit-plane store block.
    commit_block: AccessBlock,
    /// Validation-plane compaction counters (merged into the run report).
    valplane: ValPlaneStats,
    /// Epoch-tagged committed pages retained across rollbacks.
    coa_cache: PageCache,
    /// Newest commit epoch observed on a COA reply; [`EPOCH_NONE`] until
    /// the first reply and right after a recovery (which forces the next
    /// fault on every page back over the wire for revalidation).
    coa_epoch: u64,

    // ---- per-iteration state ----
    cur: Option<MtxId>,
    /// Speculative attempt number of the current subTX: the recovery
    /// count observed at `begin`. Propagated to every downstream unit on
    /// the wire frames so lifecycle events of a retry chain onto a new
    /// span of the same MTX.
    attempt: u32,
    /// Buffered user values per producing stage.
    users: Vec<VecDeque<u64>>,
    /// Buffered ring (synchronized-dependence) values for this iteration.
    ring_in_vals: VecDeque<u64>,
    /// Stores to forward to later stages at `end` (from [`WorkerCtx::write`]).
    forwards: Vec<(VAddr, u64)>,
    /// Stores to forward to one specific later stage
    /// (from [`WorkerCtx::write_to_stage`]).
    targeted_forwards: Vec<(StageId, VAddr, u64)>,
    /// User values produced this iteration, with their target stage.
    produces: Vec<(StageId, u64)>,
    /// Ring values produced this iteration for the successor iteration.
    ring_produces: Vec<u64>,
    /// Ring loopback when the ring stage has a single replica.
    ring_loopback: VecDeque<u64>,
    /// After a recovery at boundary *b*, iteration *b + 1* has no ring
    /// frame (its producer, iteration *b*, was re-executed by the commit
    /// unit): the executor of *b + 1* must skip the ring receive and
    /// re-derive synchronized state from committed memory.
    ring_skip: Option<MtxId>,
}

/// Everything needed to construct a [`WorkerCtx`]; assembled by the system
/// builder.
pub(crate) struct WorkerWiring {
    pub worker: WorkerId,
    pub shape: PipelineShape,
    pub ctrl: ControlPlane,
    pub trace: TraceSink,
    pub heap: RegionAllocator,
    pub out: Vec<(WorkerId, SendPort<Msg>)>,
    pub inn: Vec<(WorkerId, RecvPort<Msg>)>,
    pub val_out: Vec<SendPort<Msg>>,
    pub cu_out: SendPort<Msg>,
    pub coa_in: RecvPort<Msg>,
}

impl WorkerCtx {
    pub(crate) fn new(w: WorkerWiring) -> Self {
        let stage = w.shape.stage_of(w.worker);
        let n_stages = w.shape.n_stages() as usize;
        let epoch = w.ctrl.epoch();
        let data_timeout = w.shape.recv_deadline();
        let compaction = w.shape.compaction();
        let shard_map = w.shape.shard_map().cloned();
        let n_shards = w.val_out.len();
        WorkerCtx {
            role: Role::Worker(w.worker.0 as u32),
            worker: w.worker,
            stage,
            shape: w.shape,
            ctrl: w.ctrl,
            trace: w.trace,
            epoch,
            data_timeout,
            spec: SpecMem::new(),
            heap: w.heap,
            out: w.out,
            inn: w.inn,
            val_out: w.val_out,
            shard_map,
            cu_out: w.cu_out,
            coa_in: w.coa_in,
            compaction,
            filter: AccessFilter::new(),
            filtered: Vec::new(),
            val_blocks: vec![AccessBlock::new(); n_shards],
            commit_block: AccessBlock::new(),
            valplane: ValPlaneStats::default(),
            coa_cache: PageCache::new(),
            coa_epoch: EPOCH_NONE,
            cur: None,
            attempt: 0,
            users: vec![VecDeque::new(); n_stages],
            ring_in_vals: VecDeque::new(),
            forwards: Vec::new(),
            targeted_forwards: Vec::new(),
            produces: Vec::new(),
            ring_produces: Vec::new(),
            ring_loopback: VecDeque::new(),
            ring_skip: None,
        }
    }

    /// This worker's id.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The pipeline stage this worker executes.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// Replica index within the stage.
    pub fn replica(&self) -> u16 {
        self.shape.replica_of(self.worker)
    }

    /// Replica count of this worker's stage.
    pub fn replicas(&self) -> u16 {
        self.shape.kind(self.stage).replicas()
    }

    /// The worker's private UVA allocator — the hooked `malloc`/`free` of
    /// §3.3. Allocation is purely local.
    pub fn heap(&mut self) -> &mut RegionAllocator {
        &mut self.heap
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Speculative load (validated by the try-commit unit).
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn read(&mut self, addr: VAddr) -> Result<u64, Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            coa_cache,
            coa_epoch,
            compaction,
            ..
        } = self;
        spec.read(addr, |page| {
            coa_fetch(
                cu_out,
                coa_in,
                ctrl,
                epoch,
                *data_timeout,
                coa_cache,
                coa_epoch,
                *compaction,
                page,
            )
        })
    }

    /// Unvalidated load, for data the plan knows cannot conflict (e.g.
    /// read-only after loop entry, or this worker's private scratch). This
    /// is the manual-parallelization bandwidth optimization; misuse turns
    /// detectable misspeculation into silent wrong answers.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn read_private(&mut self, addr: VAddr) -> Result<u64, Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            coa_cache,
            coa_epoch,
            compaction,
            ..
        } = self;
        spec.read_unlogged(addr, |page| {
            coa_fetch(
                cu_out,
                coa_in,
                ctrl,
                epoch,
                *data_timeout,
                coa_cache,
                coa_epoch,
                *compaction,
                page,
            )
        })
    }

    /// Speculative store with `mtx_writeAll` semantics: validated,
    /// committed, and forwarded to all later subTXs of this MTX.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        self.write_no_forward(addr, value)?;
        self.forwards.push((addr, value));
        Ok(())
    }

    /// Speculative store forwarded only to one later stage's subTX of
    /// this MTX (plus validation and commit) — `mtx_writeTo` with a stage
    /// destination. A bandwidth optimization over [`WorkerCtx::write`]
    /// when only one stage reads the value.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    ///
    /// # Panics
    ///
    /// Panics unless `stage` is strictly later than this worker's stage.
    pub fn write_to_stage(
        &mut self,
        stage: StageId,
        addr: VAddr,
        value: u64,
    ) -> Result<(), Interrupt> {
        assert!(
            stage > self.stage,
            "write_to_stage must target a later stage"
        );
        assert!(stage.0 < self.shape.n_stages(), "no such stage");
        self.write_no_forward(addr, value)?;
        self.targeted_forwards.push((stage, addr, value));
        Ok(())
    }

    /// Speculative store that is validated and committed but *not*
    /// forwarded to later stages (the plan knows no later subTX of this
    /// MTX reads it) — the `mtx_writeTo(commit)` pattern.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write_no_forward(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            coa_cache,
            coa_epoch,
            compaction,
            ..
        } = self;
        spec.write(addr, value, |page| {
            coa_fetch(
                cu_out,
                coa_in,
                ctrl,
                epoch,
                *data_timeout,
                coa_cache,
                coa_epoch,
                *compaction,
                page,
            )
        })
    }

    /// Private store: stays in this worker's memory version only. Used for
    /// per-worker scratch (the memory-versioning optimization); rolled
    /// back on recovery like everything else.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn write_private(&mut self, addr: VAddr, value: u64) -> Result<(), Interrupt> {
        let Self {
            spec,
            cu_out,
            coa_in,
            ctrl,
            epoch,
            data_timeout,
            coa_cache,
            coa_epoch,
            compaction,
            ..
        } = self;
        spec.write_unlogged(addr, value, |page| {
            coa_fetch(
                cu_out,
                coa_in,
                ctrl,
                epoch,
                *data_timeout,
                coa_cache,
                coa_epoch,
                *compaction,
                page,
            )
        })
    }

    // ------------------------------------------------------------------
    // Pipeline data
    // ------------------------------------------------------------------

    /// Sends a user value to the next stage's subTX of this iteration
    /// (`mtx_produce`).
    ///
    /// # Panics
    ///
    /// Panics when called from the last stage.
    pub fn produce(&mut self, value: u64) {
        let next = StageId(self.stage.0 + 1);
        assert!(
            next.0 < self.shape.n_stages(),
            "produce from the last stage"
        );
        self.produces.push((next, value));
    }

    /// Sends a user value to a specific later stage.
    ///
    /// # Panics
    ///
    /// Panics unless `stage` is strictly later than this worker's stage.
    pub fn produce_to(&mut self, stage: StageId, value: u64) {
        assert!(stage > self.stage, "produce_to must target a later stage");
        assert!(stage.0 < self.shape.n_stages(), "no such stage");
        self.produces.push((stage, value));
    }

    /// Consumes a value produced by the previous stage (`mtx_consume`).
    ///
    /// # Panics
    ///
    /// Panics when no value is available — produce/consume counts are part
    /// of the parallelization plan and must match.
    pub fn consume(&mut self) -> u64 {
        assert!(self.stage.0 > 0, "consume at the first stage");
        self.consume_from(StageId(self.stage.0 - 1))
    }

    /// Consumes a value produced by `stage` for this iteration.
    ///
    /// # Panics
    ///
    /// Panics when no value is available from that stage.
    pub fn consume_from(&mut self, stage: StageId) -> u64 {
        self.try_consume_from(stage)
            .unwrap_or_else(|| panic!("no value from {stage} in {:?}", self.cur))
    }

    /// Consumes a value from `stage` if one was produced for this
    /// iteration.
    pub fn try_consume_from(&mut self, stage: StageId) -> Option<u64> {
        self.users[stage.0 as usize].pop_front()
    }

    /// Forwards a synchronized cross-iteration value to the next iteration
    /// (ring stages only: the TLS/DOACROSS mechanism).
    ///
    /// # Panics
    ///
    /// Panics when this stage is not the declared ring stage.
    pub fn sync_produce(&mut self, value: u64) {
        assert_eq!(
            self.shape.ring_stage(),
            Some(self.stage),
            "sync_produce outside the ring stage"
        );
        self.ring_produces.push(value);
    }

    /// Takes the synchronized values forwarded by the previous iteration
    /// (empty for iteration 0).
    pub fn sync_take(&mut self) -> Vec<u64> {
        self.ring_in_vals.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // Speculation control
    // ------------------------------------------------------------------

    /// Declares this iteration misspeculated (`mtx_misspec`) — e.g. failed
    /// control-flow speculation — notifies the commit unit, and waits for
    /// the recovery (or termination) interrupt.
    ///
    /// # Errors
    ///
    /// Always returns an interrupt; call as `return ctx.misspec();`.
    pub fn misspec<T>(&mut self) -> Result<T, Interrupt> {
        let mtx = self.cur.expect("misspec outside an iteration");
        // Abort the subTX: nothing of it may reach the other units.
        self.spec.drain_log();
        self.forwards.clear();
        self.targeted_forwards.clear();
        self.produces.clear();
        self.ring_produces.clear();
        self.cu_out
            .produce(Msg::WorkerMisspec {
                mtx,
                attempt: self.attempt,
            })
            .map_err(classify)?;
        flush_port(&self.ctrl, &mut self.epoch, &mut self.cu_out)?;
        // Block until the commit unit orchestrates recovery.
        wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<T>))
    }

    // ------------------------------------------------------------------
    // Iteration lifecycle (used by the worker main loop; public for
    // custom executors)
    // ------------------------------------------------------------------

    /// Enters the subTX of `mtx` (`mtx_begin`): refreshes memory with the
    /// uncommitted stores of earlier subTXs and buffers their produces.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn begin(&mut self, mtx: MtxId) -> Result<(), Interrupt> {
        self.cur = Some(mtx);
        // The recovery count at entry is the attempt number: a subTX
        // re-dispatched after recovery *r* is attempt *r*, so its events
        // (and every downstream unit's, via the wire frames) land on a
        // fresh span chained to the original.
        self.attempt = self.ctrl.recoveries() as u32;
        self.trace.record(
            self.role,
            Some(mtx),
            self.attempt,
            Some(self.stage),
            TraceKind::SubTxBegin,
        );
        for s in 0..self.stage.0 {
            let src = self.shape.executor(StageId(s), mtx);
            self.recv_frame(src, mtx, false)?;
        }
        if self.shape.ring_stage() == Some(self.stage) && mtx.0 >= 1 {
            if self.ring_skip.take() == Some(mtx) {
                // The producing iteration was re-executed sequentially
                // during recovery; synchronized state must be re-derived
                // from committed memory (`sync_take` will be empty).
            } else {
                let src = self.shape.executor(self.stage, MtxId(mtx.0 - 1));
                if src == self.worker {
                    // Single-replica ring: values loop back locally.
                    self.ring_in_vals = std::mem::take(&mut self.ring_loopback);
                } else {
                    self.recv_frame(src, mtx, true)?;
                }
            }
        }
        // All upstream frames are in; user code runs next. The gap back
        // to SubTxBegin is this subTX's queue wait.
        self.trace.record(
            self.role,
            Some(mtx),
            self.attempt,
            Some(self.stage),
            TraceKind::ExecBegin,
        );
        Ok(())
    }

    /// Exits the subTX of `mtx` (`mtx_end`): ships the access stream to
    /// try-commit, the store set to commit, data frames to later stages,
    /// and the ring frame to the successor iteration.
    ///
    /// # Errors
    ///
    /// Interrupted by recovery or termination.
    pub fn end(&mut self, mtx: MtxId, outcome: IterOutcome) -> Result<(), Interrupt> {
        debug_assert_eq!(self.cur, Some(mtx), "end without matching begin");
        let attempt = self.attempt;
        // User code is done; everything from here to SubTxEnd is the
        // validation/commit-plane flush.
        self.trace.record(
            self.role,
            Some(mtx),
            attempt,
            Some(self.stage),
            TraceKind::FlushBegin,
        );
        let records = self.spec.drain_log();
        let stage = self.stage;
        let exit = outcome == IterOutcome::Exit;
        let n_shards = self.val_out.len();

        // What the unpacked per-record encoding would have shipped: one
        // item per access plus the per-shard framing pair on the
        // validation plane, one item per store plus the framing pair on
        // the commit plane.
        let raw_stores = records
            .iter()
            .filter(|r| r.kind == AccessKind::Store)
            .count();
        let pre_items = records.len() as u64 + 2 * n_shards as u64 + raw_stores as u64 + 2;
        self.valplane.records_pre += pre_items;
        self.valplane.bytes_pre += pre_items * ITEM_BYTES;

        if self.compaction {
            // Filter the access log through the write-combining store
            // buffer, then pack each shard's share (and the coalesced
            // store set) into block frames.
            let Self {
                filter,
                filtered,
                val_blocks,
                commit_block,
                valplane,
                shard_map,
                ..
            } = self;
            valplane.records_filtered += filter.filter_into(&records, filtered);
            for block in val_blocks.iter_mut() {
                block.clear();
            }
            for r in filtered.iter() {
                val_blocks[route(shard_map.as_ref(), r.addr.page(), n_shards)].push(
                    r.kind,
                    r.addr.raw(),
                    r.value,
                );
            }
            commit_block.clear();
            for (addr, value) in SpecMem::stores_of(filtered) {
                commit_block.push(AccessKind::Store, addr.raw(), value);
            }

            // Validation plane: one block per shard, empty blocks
            // included so every replay cursor advances.
            for s in 0..n_shards {
                let block = Box::new(std::mem::take(&mut self.val_blocks[s]));
                self.valplane.records_post += 1;
                self.valplane.bytes_post += ITEM_BYTES + block.wire_bytes();
                self.valplane.blocks += 1;
                self.valplane.block_records += u64::from(block.len());
                send(
                    &mut self.val_out[s],
                    Msg::ValBlock {
                        mtx,
                        attempt,
                        stage,
                        block,
                    },
                )?;
            }
            for port in &mut self.val_out {
                flush_port(&self.ctrl, &mut self.epoch, port)?;
            }

            // Commit plane: the coalesced store set and the loop-exit
            // decision in one frame.
            let block = Box::new(std::mem::take(&mut self.commit_block));
            self.valplane.records_post += 1;
            self.valplane.bytes_post += ITEM_BYTES + block.wire_bytes();
            self.valplane.blocks += 1;
            self.valplane.block_records += u64::from(block.len());
            send(
                &mut self.cu_out,
                Msg::CommitBlock {
                    mtx,
                    attempt,
                    stage,
                    exit,
                    block,
                },
            )?;
            flush_port(&self.ctrl, &mut self.epoch, &mut self.cu_out)?;
        } else {
            // Legacy unpacked encoding: one message per record. Ships
            // exactly what the pre-side accounting counted.
            self.valplane.records_post += pre_items;
            self.valplane.bytes_post += pre_items * ITEM_BYTES;

            // Validation streams (ordered loads + stores), split across
            // the try-commit shards by page: every shard gets the framing
            // so its replay cursor advances, each record goes only to the
            // shard owning its page. At one shard this is the original
            // single stream verbatim.
            for port in &mut self.val_out {
                send(
                    port,
                    Msg::SubTxBegin {
                        mtx,
                        attempt,
                        stage,
                    },
                )?;
            }
            for r in &records {
                let msg = match r.kind {
                    AccessKind::Load => Msg::Load {
                        addr: r.addr.raw(),
                        value: r.value,
                    },
                    AccessKind::Store => Msg::Store {
                        addr: r.addr.raw(),
                        value: r.value,
                    },
                };
                let s = route(self.shard_map.as_ref(), r.addr.page(), n_shards);
                send(&mut self.val_out[s], msg)?;
            }
            for port in &mut self.val_out {
                send(port, Msg::SubTxEnd { mtx, stage })?;
            }
            for port in &mut self.val_out {
                flush_port(&self.ctrl, &mut self.epoch, port)?;
            }

            // Store stream to the commit unit (group transaction commit
            // input).
            send(
                &mut self.cu_out,
                Msg::SubTxBegin {
                    mtx,
                    attempt,
                    stage,
                },
            )?;
            for (addr, value) in SpecMem::stores_of(&records) {
                send(
                    &mut self.cu_out,
                    Msg::Store {
                        addr: addr.raw(),
                        value,
                    },
                )?;
            }
            send(
                &mut self.cu_out,
                Msg::SubTxDone {
                    mtx,
                    attempt,
                    stage,
                    exit,
                },
            )?;
            flush_port(&self.ctrl, &mut self.epoch, &mut self.cu_out)?;
        }

        // Data frames to the executor of this iteration in each later
        // stage: forwarded stores + user values.
        let forwards = std::mem::take(&mut self.forwards);
        let targeted = std::mem::take(&mut self.targeted_forwards);
        let produces = std::mem::take(&mut self.produces);
        for t in (stage.0 + 1)..self.shape.n_stages() {
            let t = StageId(t);
            let dst = self.shape.executor(t, mtx);
            let Self {
                out, ctrl, epoch, ..
            } = self;
            let port = port_to(out, dst);
            send(port, Msg::FrameBegin { mtx })?;
            for &(addr, value) in &forwards {
                send(
                    port,
                    Msg::Forward {
                        addr: addr.raw(),
                        value,
                    },
                )?;
            }
            for &(ts, addr, value) in targeted.iter().filter(|(ts, _, _)| *ts == t) {
                debug_assert_eq!(ts, t);
                send(
                    port,
                    Msg::Forward {
                        addr: addr.raw(),
                        value,
                    },
                )?;
            }
            for &(ps, value) in produces.iter().filter(|(ps, _)| *ps == t) {
                debug_assert_eq!(ps, t);
                send(port, Msg::User { value })?;
            }
            send(port, Msg::FrameEnd { mtx })?;
            flush_port(ctrl, epoch, port)?;
        }

        // Ring frame for the successor iteration.
        if self.shape.ring_stage() == Some(stage) {
            let ring_values = std::mem::take(&mut self.ring_produces);
            match self.shape.ring_next(self.worker) {
                None => self.ring_loopback = ring_values.into(),
                Some(dst) => {
                    let next_mtx = MtxId(mtx.0 + 1);
                    let Self {
                        out, ctrl, epoch, ..
                    } = self;
                    let port = port_to(out, dst);
                    send(port, Msg::FrameBegin { mtx: next_mtx })?;
                    for value in ring_values {
                        send(port, Msg::User { value })?;
                    }
                    send(port, Msg::FrameEnd { mtx: next_mtx })?;
                    flush_port(ctrl, epoch, port)?;
                }
            }
        }

        // Reset per-iteration state.
        for q in &mut self.users {
            q.clear();
        }
        self.ring_in_vals.clear();
        self.trace.record(
            self.role,
            Some(mtx),
            attempt,
            Some(stage),
            TraceKind::SubTxEnd,
        );
        self.cur = None;
        Ok(())
    }

    fn recv_frame(&mut self, src: WorkerId, mtx: MtxId, is_ring: bool) -> Result<(), Interrupt> {
        let src_stage = self.shape.stage_of(src).0 as usize;
        let Self {
            inn,
            spec,
            users,
            ring_in_vals,
            ctrl,
            epoch,
            data_timeout,
            ..
        } = self;
        let timeout = *data_timeout;
        let port = inn
            .iter_mut()
            .find(|(id, _)| *id == src)
            .map(|(_, p)| p)
            .unwrap_or_else(|| panic!("no data queue from {src}"));

        let first = wait_for_deadline(ctrl, epoch, timeout, || {
            port.try_consume().map_err(classify)
        })?;
        match first {
            Msg::FrameBegin { mtx: m } => {
                assert_eq!(m, mtx, "frame out of order from {src}: got {m}, want {mtx}")
            }
            other => panic!("expected FrameBegin from {src}, got {other:?}"),
        }
        loop {
            let msg = wait_for_deadline(ctrl, epoch, timeout, || {
                port.try_consume().map_err(classify)
            })?;
            match msg {
                Msg::Forward { addr, value } => spec.apply_forwarded(VAddr::from_raw(addr), value),
                Msg::User { value } => {
                    if is_ring {
                        ring_in_vals.push_back(value);
                    } else {
                        users[src_stage].push_back(value);
                    }
                }
                Msg::FrameEnd { mtx: m } => {
                    assert_eq!(m, mtx, "frame end mismatch from {src}");
                    return Ok(());
                }
                other => panic!("unexpected message in frame from {src}: {other:?}"),
            }
        }
    }

    /// Blocks until an interrupt arrives (used when this worker has no
    /// iterations left under an iteration limit).
    pub(crate) fn idle_until_interrupt(&mut self) -> Result<(), Interrupt> {
        wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<()>)).map(|_: ()| ())
    }

    /// Raises a timeout-driven recovery request on the control plane and
    /// blocks until the commit unit answers with a status change. The
    /// request, not the raiser, picks the boundary: the commit unit always
    /// recovers at its next commit so no committed-but-unapplied MTX is
    /// lost.
    pub(crate) fn request_fault_recovery(&mut self) -> Interrupt {
        self.ctrl.raise_fabric_fault();
        match wait_for(&self.ctrl, &mut self.epoch, || Ok(None::<()>)) {
            Ok(()) => unreachable!("step never yields"),
            Err(intr) => intr,
        }
    }

    /// Participates in the §4.3 recovery protocol:
    /// barrier → flush queues → barrier → re-protect heap → barrier.
    ///
    /// `boundary` is the squashed MTX being re-executed by the commit
    /// unit; its successor iteration will have no ring frame.
    pub(crate) fn do_recovery(&mut self, boundary: MtxId) {
        let barrier = self.ctrl.barrier().clone();
        barrier.wait(); // B1: everyone is in recovery mode.
        for (_, port) in &mut self.out {
            port.clear();
        }
        for port in &mut self.val_out {
            port.clear();
        }
        self.cu_out.clear();
        for (_, port) in &mut self.inn {
            port.drain();
        }
        self.coa_in.drain();
        barrier.wait(); // B2: all speculative queue state is gone.
        self.spec.rollback(); // Reinstate heap access protection.
        for q in &mut self.users {
            q.clear();
        }
        self.ring_in_vals.clear();
        self.ring_loopback.clear();
        self.forwards.clear();
        self.targeted_forwards.clear();
        self.produces.clear();
        self.ring_produces.clear();
        self.cur = None;
        self.filtered.clear();
        for block in &mut self.val_blocks {
            block.clear();
        }
        self.commit_block.clear();
        // The COA cache keeps its (pristine, committed) pages — that is
        // its whole value across rollbacks — but the epoch view resets so
        // the next fault on every page revalidates over the wire before
        // any local serve.
        self.coa_epoch = EPOCH_NONE;
        // Iteration boundary+1's ring producer was re-executed by the
        // commit unit: its executor must re-derive synchronized state
        // from committed memory instead of waiting for a frame.
        self.ring_skip = Some(boundary.next());
        barrier.wait(); // B3: the commit unit re-executed; recommence.
                        // Force the next poll to re-read the status word.
        self.epoch = u64::MAX;
    }

    /// COA installs performed by this worker so far.
    pub fn coa_faults(&self) -> u64 {
        self.spec.faults_served()
    }

    /// This worker's validation-plane compaction and COA-cache counters
    /// (merged across workers into [`crate::RunReport::valplane`]).
    pub fn valplane(&self) -> ValPlaneStats {
        ValPlaneStats {
            cache_hits: self.coa_cache.hits(),
            cache_misses: self.coa_cache.misses(),
            cache_stale: self.coa_cache.stale(),
            ..self.valplane.clone()
        }
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("worker", &self.worker)
            .field("stage", &self.stage)
            .field("cur", &self.cur)
            .finish_non_exhaustive()
    }
}

/// Maps a fabric failure to the interrupt the runtime handles it with: an
/// exhausted retry budget asks for recovery, anything else means the peer
/// is gone.
pub(crate) fn classify(e: FabricError) -> Interrupt {
    match e {
        FabricError::Timeout => Interrupt::FabricTimeout,
        _ => Interrupt::ChannelDown,
    }
}

/// Buffered, non-blocking enqueue; hard errors on peer death or an
/// exhausted fault-retry budget (an overfull batch flushes eagerly).
fn send(port: &mut SendPort<Msg>, msg: Msg) -> Result<(), Interrupt> {
    port.produce(msg).map_err(classify)
}

/// Interruptible flush: retries while the transport is full or an injected
/// fault consumed the attempt, unwinding on control-plane interrupts, a
/// dead peer, or retry-budget exhaustion.
pub(crate) fn flush_port(
    ctrl: &ControlPlane,
    epoch: &mut u64,
    port: &mut SendPort<Msg>,
) -> Result<(), Interrupt> {
    wait_for(ctrl, epoch, || match port.try_flush() {
        Ok(true) => Ok(Some(())),
        Ok(false) => Ok(None),
        Err(FabricError::Retriable) => Ok(None),
        Err(e) => Err(classify(e)),
    })
}

fn port_to(ports: &mut [(WorkerId, SendPort<Msg>)], dst: WorkerId) -> &mut SendPort<Msg> {
    ports
        .iter_mut()
        .find(|(id, _)| *id == dst)
        .map(|(_, p)| p)
        .unwrap_or_else(|| panic!("no data queue to {dst}"))
}

/// One Copy-On-Access round trip: request the page from the commit unit
/// and wait for the reply (at most one outstanding request per worker, so
/// replies arrive in request order).
///
/// With compaction on, the epoch-tagged page cache short-circuits the
/// trip entirely when the cached copy carries the newest epoch this
/// worker has seen, and otherwise advertises the cached tag so the commit
/// unit can answer with a payload-free [`Msg::CoaFresh`] revalidation.
/// Either way the worker's speculative memory receives a copy of the
/// committed page — the cache retains its own pristine clone.
#[allow(clippy::too_many_arguments)]
fn coa_fetch(
    cu_out: &mut SendPort<Msg>,
    coa_in: &mut RecvPort<Msg>,
    ctrl: &ControlPlane,
    epoch: &mut u64,
    timeout: Option<Duration>,
    cache: &mut PageCache,
    coa_epoch: &mut u64,
    use_cache: bool,
    page: PageId,
) -> Result<Page, Interrupt> {
    let have = if use_cache {
        let have = cache.epoch_of(page);
        if have.is_some() && have == Some(*coa_epoch) && *coa_epoch != EPOCH_NONE {
            // The copy was (re)validated at the newest epoch this worker
            // has observed: serve it locally. It can lag the commit
            // unit's current image, but only within the freshness window
            // every COA fetch already has — value validation catches any
            // resulting misspeculation.
            return Ok(cache.serve(page));
        }
        have.unwrap_or(EPOCH_NONE)
    } else {
        EPOCH_NONE
    };
    cu_out
        .produce(Msg::CoaRequest { page: page.0, have })
        .map_err(classify)?;
    flush_port(ctrl, epoch, cu_out)?;
    let reply = wait_for_deadline(ctrl, epoch, timeout, || {
        coa_in.try_consume().map_err(classify)
    })?;
    match reply {
        Msg::CoaReply {
            page: p,
            epoch: e,
            data,
        } => {
            assert_eq!(p, page.0, "out-of-order COA reply");
            if use_cache {
                *coa_epoch = e;
                cache.install(page, e, (*data).clone());
            }
            Ok(*data)
        }
        Msg::CoaFresh { page: p, epoch: e } => {
            assert_eq!(p, page.0, "out-of-order COA reply");
            assert!(use_cache, "CoaFresh for a request that advertised no copy");
            *coa_epoch = e;
            Ok(cache.revalidate(page, e))
        }
        other => panic!("expected CoaReply, got {other:?}"),
    }
}

/// The worker thread body: iterate over assigned MTXs, handling recovery
/// and termination.
pub(crate) fn worker_main(mut ctx: WorkerCtx, stage_fn: StageFn, limit: Option<u64>) -> WorkerCtx {
    let mut next = ctx.shape.next_assigned(ctx.worker, MtxId(0));
    loop {
        let exhausted = limit.is_some_and(|l| next.0 >= l);
        let result = if exhausted {
            ctx.idle_until_interrupt()
        } else {
            run_iteration(&mut ctx, next, &stage_fn)
        };
        match result {
            Ok(()) => next = ctx.shape.next_assigned(ctx.worker, next.next()),
            Err(Interrupt::Recovery { boundary }) => {
                ctx.do_recovery(boundary);
                next = ctx.shape.next_assigned(ctx.worker, boundary.next());
            }
            Err(Interrupt::Terminate) => break,
            Err(Interrupt::ChannelDown) => {
                // A peer thread is gone; convert into a typed shutdown so
                // every other thread unwinds instead of hanging.
                ctx.ctrl.report_channel_down();
                break;
            }
            Err(Interrupt::FabricTimeout) => {
                // A transfer exhausted its retry budget (or a receive
                // starved past its deadline). Ask the commit unit for a
                // recovery round and rendezvous.
                match ctx.request_fault_recovery() {
                    Interrupt::Recovery { boundary } => {
                        ctx.do_recovery(boundary);
                        next = ctx.shape.next_assigned(ctx.worker, boundary.next());
                    }
                    Interrupt::Terminate => break,
                    Interrupt::ChannelDown => {
                        ctx.ctrl.report_channel_down();
                        break;
                    }
                    Interrupt::FabricTimeout => {
                        unreachable!("deadline-free wait cannot time out")
                    }
                }
            }
        }
    }
    ctx
}

fn run_iteration(ctx: &mut WorkerCtx, mtx: MtxId, stage_fn: &StageFn) -> Result<(), Interrupt> {
    ctx.begin(mtx)?;
    let outcome = stage_fn(ctx, mtx)?;
    ctx.end(mtx, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmtx_fabric::{
        channel, channel_faulted, CostModel, FabricStats, FaultPlan, FaultRates, RetryPolicy,
    };

    #[test]
    fn flush_port_reports_dead_peer_as_channel_down() {
        let ctrl = ControlPlane::new(1);
        let mut epoch = ctrl.epoch();
        // Batch larger than what we enqueue: produce only buffers, the
        // flush discovers the dropped consumer.
        let (mut tx, rx) = channel::<Msg>(8, 4);
        drop(rx);
        tx.produce(Msg::CoaRequest {
            page: 0,
            have: EPOCH_NONE,
        })
        .unwrap();
        let r = flush_port(&ctrl, &mut epoch, &mut tx);
        assert_eq!(r.unwrap_err(), Interrupt::ChannelDown);
    }

    #[test]
    fn flush_port_converts_exhausted_retries_into_fabric_timeout() {
        let ctrl = ControlPlane::new(1);
        let mut epoch = ctrl.epoch();
        let plan = FaultPlan::new(7, FaultRates::only_drop(1.0));
        let (mut tx, _rx) = channel_faulted::<Msg>(
            8,
            4,
            CostModel::FREE,
            FabricStats::new(),
            Some(plan.injector(0)),
            RetryPolicy {
                max_attempts: 4,
                base_backoff_us: 1,
                max_backoff_us: 1,
            },
        );
        tx.produce(Msg::CoaRequest {
            page: 0,
            have: EPOCH_NONE,
        })
        .unwrap();
        let r = flush_port(&ctrl, &mut epoch, &mut tx);
        assert_eq!(r.unwrap_err(), Interrupt::FabricTimeout);
    }

    #[test]
    fn classify_maps_fabric_errors() {
        assert_eq!(classify(FabricError::Timeout), Interrupt::FabricTimeout);
        assert_eq!(classify(FabricError::Disconnected), Interrupt::ChannelDown);
        assert_eq!(classify(FabricError::Retriable), Interrupt::ChannelDown);
    }

    fn rec(kind: AccessKind, addr: u64, value: u64) -> AccessRecord {
        AccessRecord {
            kind,
            addr: VAddr::from_raw(addr),
            value,
        }
    }

    fn filter(records: &[AccessRecord]) -> (Vec<AccessRecord>, u64) {
        let mut f = AccessFilter::new();
        let mut out = Vec::new();
        let n = f.filter_into(records, &mut out);
        (out, n)
    }

    /// Reference implementation of the filtering contract: first load per
    /// address (unless locally stored before), one store per address at
    /// first-store position with the final value.
    fn filter_reference(records: &[AccessRecord]) -> Vec<AccessRecord> {
        use std::collections::HashMap;
        let mut out: Vec<AccessRecord> = Vec::new();
        let mut seen_load: HashMap<u64, ()> = HashMap::new();
        let mut store_at: HashMap<u64, usize> = HashMap::new();
        for r in records {
            let key = r.addr.raw();
            match r.kind {
                AccessKind::Load => {
                    if !seen_load.contains_key(&key) && !store_at.contains_key(&key) {
                        seen_load.insert(key, ());
                        out.push(*r);
                    }
                }
                AccessKind::Store => match store_at.get(&key) {
                    Some(&i) => out[i].value = r.value,
                    None => {
                        store_at.insert(key, out.len());
                        out.push(*r);
                    }
                },
            }
        }
        out
    }

    #[test]
    fn filter_suppresses_repeat_loads_and_coalesces_stores() {
        let (out, n) = filter(&[
            rec(AccessKind::Load, 8, 5),
            rec(AccessKind::Load, 8, 5),     // repeat load: suppressed
            rec(AccessKind::Store, 8, 9),    // first store: survives here
            rec(AccessKind::Load, 8, 9),     // load after store: suppressed
            rec(AccessKind::Store, 8, 11),   // coalesces into the first store
            rec(AccessKind::Load, 16, 0),    // different address: survives
            rec(AccessKind::Store, 4096, 1), // different page: survives
        ]);
        assert_eq!(n, 3);
        assert_eq!(
            out,
            vec![
                rec(AccessKind::Load, 8, 5),
                rec(AccessKind::Store, 8, 11), // final value, first position
                rec(AccessKind::Load, 16, 0),
                rec(AccessKind::Store, 4096, 1),
            ]
        );
    }

    #[test]
    fn filter_passes_disjoint_streams_through_untouched() {
        let records: Vec<AccessRecord> = (0..100u64)
            .map(|i| {
                rec(
                    if i % 2 == 0 {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    },
                    8 * i,
                    i,
                )
            })
            .collect();
        let (out, n) = filter(&records);
        assert_eq!(n, 0);
        assert_eq!(out, records);
    }

    #[test]
    fn filter_matches_reference_on_pseudorandom_streams() {
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut f = AccessFilter::new();
        let mut out = Vec::new();
        for round in 0..20 {
            let mut records = Vec::new();
            for i in 0..(50 + round * 37) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // A small address universe forces heavy collisions.
                let addr = 8 * (x % 23);
                let kind = if x & 4 == 0 {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                records.push(rec(kind, addr, x.wrapping_add(i)));
            }
            // Reuse one filter across rounds: generation stamping must
            // isolate subTXs from each other.
            let n = f.filter_into(&records, &mut out);
            assert_eq!(out, filter_reference(&records), "round {round}");
            assert_eq!(n as usize, records.len() - out.len());
        }
    }

    #[test]
    fn filtered_stream_preserves_final_image_and_first_observations() {
        // The soundness invariant the compaction rests on: replaying the
        // filtered stream yields the same final store image, and every
        // surviving load observes what the full stream's first load of
        // that address observed.
        let mut x = 1u64;
        let mut records = Vec::new();
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = 8 * (x % 17);
            let kind = if x & 8 == 0 {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            records.push(rec(kind, addr, i));
        }
        let (out, _) = filter(&records);
        use std::collections::HashMap;
        let mut full_image: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            if r.kind == AccessKind::Store {
                full_image.insert(r.addr.raw(), r.value);
            }
        }
        let mut filt_image: HashMap<u64, u64> = HashMap::new();
        for r in &out {
            if r.kind == AccessKind::Store {
                assert!(
                    !filt_image.contains_key(&r.addr.raw()),
                    "one store per address after coalescing"
                );
                filt_image.insert(r.addr.raw(), r.value);
            }
        }
        assert_eq!(full_image, filt_image);
        for r in &out {
            if r.kind == AccessKind::Load {
                let first = records
                    .iter()
                    .find(|q| q.addr == r.addr)
                    .expect("load came from the stream");
                assert_eq!(first.kind, AccessKind::Load, "no store precedes it");
                assert_eq!(first.value, r.value);
            }
        }
    }
}
