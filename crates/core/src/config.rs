//! System configuration: pipeline shape, batching, capacities.
//!
//! A DSMTX system is configured with a pipeline of stages (the
//! `configuration` argument of `mtx_newDSMTXsystem` in Table 1). Each stage
//! is sequential (one worker executes every iteration's subTX) or parallel
//! (replicas split iterations round-robin — the DOALL stage of
//! `DSWP+[S, DOALL, S]`-style plans). A parallel stage may additionally be
//! a *ring*: each replica owns a queue to its successor, which is how TLS
//! and DOACROSS forward synchronized cross-iteration dependences.

use dsmtx_fabric::{FaultRates, RetryPolicy};
use dsmtx_mem::ShardMap;

use crate::ids::{MtxId, StageId, WorkerId};

/// Which mesh links a fault plan injects into, selected by the link's
/// *source* endpoint (the injector lives on the send side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every link in the mesh.
    All,
    /// Links originating at worker threads (stage-to-stage data, ring
    /// forwarding, validation traffic, commit notifications, COA
    /// requests).
    WorkerLinks,
    /// Links originating at the try-commit unit (verdicts, its COA
    /// requests).
    TryCommitLinks,
    /// Links originating at the commit unit (COA replies).
    CommitLinks,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::All => write!(f, "all"),
            FaultTarget::WorkerLinks => write!(f, "worker"),
            FaultTarget::TryCommitLinks => write!(f, "try-commit"),
            FaultTarget::CommitLinks => write!(f, "commit"),
        }
    }
}

/// Fault-injection configuration for a run: seed, rates, targeted links,
/// and the timing knobs that convert injected faults into recoveries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed the per-link decision streams derive from.
    pub seed: u64,
    /// Per-class fault probabilities.
    pub rates: FaultRates,
    /// Which links the plan injects into.
    pub target: FaultTarget,
    /// Deadline on blocking data receives, microseconds; silence past it
    /// raises a fabric-timeout recovery request.
    pub recv_timeout_us: u64,
    /// Send-side retry budget before a flush gives up with a timeout.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// A plan over every link with 50 ms receive deadlines and the default
    /// retry budget.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultConfig {
            seed,
            rates,
            target: FaultTarget::All,
            recv_timeout_us: 50_000,
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Restricts injection to `target` links.
    pub fn target(mut self, target: FaultTarget) -> Self {
        self.target = target;
        self
    }

    /// Sets the blocking-receive deadline in microseconds.
    pub fn recv_timeout_us(mut self, us: u64) -> Self {
        self.recv_timeout_us = us;
        self
    }

    /// Sets the send-side retry budget.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// How one pipeline stage executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// One worker executes the subTX of every iteration.
    Sequential,
    /// `replicas` workers split iterations round-robin (iteration *i* runs
    /// on replica *i mod replicas*).
    Parallel {
        /// Number of replica workers (≥ 1).
        replicas: u16,
    },
}

impl StageKind {
    /// Worker count of the stage.
    pub fn replicas(self) -> u16 {
        match self {
            StageKind::Sequential => 1,
            StageKind::Parallel { replicas } => replicas,
        }
    }
}

/// Errors detected while validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The pipeline has no stages.
    NoStages,
    /// A parallel stage was declared with zero replicas.
    ZeroReplicas(StageId),
    /// The ring stage index does not exist or is sequential.
    BadRingStage(StageId),
    /// Batch or capacity of zero.
    ZeroSize(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoStages => write!(f, "pipeline has no stages"),
            ConfigError::ZeroReplicas(s) => write!(f, "{s} has zero replicas"),
            ConfigError::BadRingStage(s) => {
                write!(f, "{s} cannot be a ring (missing or sequential)")
            }
            ConfigError::ZeroSize(what) => write!(f, "{what} must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder-style system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    stages: Vec<StageKind>,
    ring_stage: Option<StageId>,
    batch: usize,
    capacity: usize,
    unit_shards: usize,
    compaction: bool,
    shard_map: Option<ShardMap>,
    fault: Option<FaultConfig>,
}

impl SystemConfig {
    /// Starts an empty pipeline with the default batch (64 items), queue
    /// capacity (256 packets), a single speculation-unit shard, and
    /// validation-plane compaction on.
    pub fn new() -> Self {
        SystemConfig {
            stages: Vec::new(),
            ring_stage: None,
            batch: 64,
            capacity: 256,
            unit_shards: 1,
            compaction: true,
            shard_map: None,
            fault: None,
        }
    }

    /// Installs a fault-injection plan for the run. Fault-free when never
    /// called.
    pub fn faults(&mut self, fault: FaultConfig) -> &mut Self {
        self.fault = Some(fault);
        self
    }

    /// Appends a stage to the pipeline.
    pub fn stage(&mut self, kind: StageKind) -> &mut Self {
        self.stages.push(kind);
        self
    }

    /// Declares `stage` a ring: each replica gets a queue to its successor
    /// replica for synchronized cross-iteration dependences (TLS /
    /// DOACROSS).
    pub fn ring(&mut self, stage: StageId) -> &mut Self {
        self.ring_stage = Some(stage);
        self
    }

    /// Sets the queue batch threshold (items per packet).
    pub fn batch(&mut self, batch: usize) -> &mut Self {
        self.batch = batch;
        self
    }

    /// Sets the queue capacity (in-flight packets), which bounds how far a
    /// stage can run ahead of its consumers.
    pub fn capacity(&mut self, capacity: usize) -> &mut Self {
        self.capacity = capacity;
        self
    }

    /// Sets the number of try-commit shards (§3.2's "the algorithms …
    /// are parallelizable"). Each shard validates a disjoint
    /// hash-partition of `PageId` space against its own replay image;
    /// the commit unit aggregates per-shard verdicts into the group
    /// commit decision. The default of 1 reproduces the paper
    /// prototype's single speculation unit.
    pub fn unit_shards(&mut self, shards: usize) -> &mut Self {
        self.unit_shards = shards;
        self
    }

    /// Installs a profile-guided page→shard placement. Workers route the
    /// pages it names to the recorded shard instead of the hash
    /// partition — the explicit thread/data mapping the auto-planner
    /// ships when the store profile is skewed. All threads read the same
    /// map from the shared shape, so the partition stays agreed-upon.
    pub fn shard_map(&mut self, map: ShardMap) -> &mut Self {
        self.shard_map = Some(map);
        self
    }

    /// Enables or disables validation-plane compaction (on by default):
    /// per-subTX access filtering (last store / first load per address)
    /// and packed `AccessBlock` frames on the validation and commit
    /// planes. Disabling it selects the legacy one-message-per-record
    /// encoding — the differential baseline; verdicts, commit order, and
    /// committed memory are identical either way.
    pub fn compaction(&mut self, on: bool) -> &mut Self {
        self.compaction = on;
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn build(&self) -> Result<PipelineShape, ConfigError> {
        if self.stages.is_empty() {
            return Err(ConfigError::NoStages);
        }
        if self.batch == 0 {
            return Err(ConfigError::ZeroSize("batch"));
        }
        if self.capacity == 0 {
            return Err(ConfigError::ZeroSize("capacity"));
        }
        if self.unit_shards == 0 {
            return Err(ConfigError::ZeroSize("unit_shards"));
        }
        let mut first_worker = Vec::with_capacity(self.stages.len());
        let mut next = 0u16;
        for (i, st) in self.stages.iter().enumerate() {
            if st.replicas() == 0 {
                return Err(ConfigError::ZeroReplicas(StageId(i as u16)));
            }
            first_worker.push(next);
            next += st.replicas();
        }
        if let Some(ring) = self.ring_stage {
            let ok = matches!(
                self.stages.get(ring.0 as usize),
                Some(StageKind::Parallel { .. })
            );
            if !ok {
                return Err(ConfigError::BadRingStage(ring));
            }
        }
        Ok(PipelineShape {
            stages: self.stages.clone(),
            first_worker,
            n_workers: next,
            ring_stage: self.ring_stage,
            batch: self.batch,
            capacity: self.capacity,
            unit_shards: self.unit_shards,
            compaction: self.compaction,
            shard_map: self.shard_map.clone(),
            fault: self.fault,
        })
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A validated pipeline: stage layout plus worker/iteration mappings.
#[derive(Debug, Clone)]
pub struct PipelineShape {
    stages: Vec<StageKind>,
    /// First worker id of each stage.
    first_worker: Vec<u16>,
    n_workers: u16,
    ring_stage: Option<StageId>,
    batch: usize,
    capacity: usize,
    unit_shards: usize,
    compaction: bool,
    shard_map: Option<ShardMap>,
    fault: Option<FaultConfig>,
}

impl PipelineShape {
    /// Number of pipeline stages.
    pub fn n_stages(&self) -> u16 {
        self.stages.len() as u16
    }

    /// Total worker thread count (excluding try-commit and commit units).
    pub fn n_workers(&self) -> u16 {
        self.n_workers
    }

    /// Kind of `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn kind(&self, stage: StageId) -> StageKind {
        self.stages[stage.0 as usize]
    }

    /// The stage a worker belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stage_of(&self, worker: WorkerId) -> StageId {
        let idx = self
            .first_worker
            .partition_point(|&fw| fw <= worker.0)
            .checked_sub(1)
            .expect("worker id below first stage");
        assert!(worker.0 < self.n_workers, "worker id out of range");
        StageId(idx as u16)
    }

    /// Replica index of `worker` within its stage.
    pub fn replica_of(&self, worker: WorkerId) -> u16 {
        let stage = self.stage_of(worker);
        worker.0 - self.first_worker[stage.0 as usize]
    }

    /// The workers of `stage`, in replica order.
    pub fn workers_of(&self, stage: StageId) -> impl Iterator<Item = WorkerId> {
        let first = self.first_worker[stage.0 as usize];
        let count = self.stages[stage.0 as usize].replicas();
        (first..first + count).map(WorkerId)
    }

    /// The worker that executes the subTX of `mtx` at `stage`.
    pub fn executor(&self, stage: StageId, mtx: MtxId) -> WorkerId {
        let first = self.first_worker[stage.0 as usize];
        match self.stages[stage.0 as usize] {
            StageKind::Sequential => WorkerId(first),
            StageKind::Parallel { replicas } => {
                WorkerId(first + (mtx.0 % u64::from(replicas)) as u16)
            }
        }
    }

    /// The first iteration at or after `from` that `worker` executes.
    pub fn next_assigned(&self, worker: WorkerId, from: MtxId) -> MtxId {
        let stage = self.stage_of(worker);
        match self.stages[stage.0 as usize] {
            StageKind::Sequential => from,
            StageKind::Parallel { replicas } => {
                let r = u64::from(replicas);
                let k = u64::from(self.replica_of(worker));
                let base = from.0;
                let rem = base % r;
                let delta = (k + r - rem) % r;
                MtxId(base + delta)
            }
        }
    }

    /// The ring successor of `worker`, when its stage is the ring stage.
    pub fn ring_next(&self, worker: WorkerId) -> Option<WorkerId> {
        let stage = self.stage_of(worker);
        if self.ring_stage != Some(stage) {
            return None;
        }
        let first = self.first_worker[stage.0 as usize];
        let replicas = self.stages[stage.0 as usize].replicas();
        if replicas < 2 {
            return None;
        }
        let k = worker.0 - first;
        Some(WorkerId(first + (k + 1) % replicas))
    }

    /// The declared ring stage, if any.
    pub fn ring_stage(&self) -> Option<StageId> {
        self.ring_stage
    }

    /// Queue batch threshold.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Queue capacity in packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of try-commit shards the system runs (≥ 1).
    pub fn unit_shards(&self) -> usize {
        self.unit_shards
    }

    /// Whether the validation/commit planes use access filtering and
    /// packed frames (default) or the legacy per-record encoding.
    pub fn compaction(&self) -> bool {
        self.compaction
    }

    /// The profile-guided page→shard placement, if one was installed.
    pub fn shard_map(&self) -> Option<&ShardMap> {
        self.shard_map.as_ref()
    }

    /// The fault-injection plan, if one was configured.
    pub fn fault(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// The blocking-receive deadline implied by the fault plan, if any.
    pub fn recv_deadline(&self) -> Option<std::time::Duration> {
        self.fault
            .as_ref()
            .map(|f| std::time::Duration::from_micros(f.recv_timeout_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s_d3_s() -> PipelineShape {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential)
            .stage(StageKind::Parallel { replicas: 3 })
            .stage(StageKind::Sequential);
        cfg.build().unwrap()
    }

    #[test]
    fn worker_layout_is_dense_and_ordered() {
        let p = s_d3_s();
        assert_eq!(p.n_stages(), 3);
        assert_eq!(p.n_workers(), 5);
        assert_eq!(p.stage_of(WorkerId(0)), StageId(0));
        assert_eq!(p.stage_of(WorkerId(1)), StageId(1));
        assert_eq!(p.stage_of(WorkerId(3)), StageId(1));
        assert_eq!(p.stage_of(WorkerId(4)), StageId(2));
        assert_eq!(p.replica_of(WorkerId(2)), 1);
        let w: Vec<_> = p.workers_of(StageId(1)).collect();
        assert_eq!(w, vec![WorkerId(1), WorkerId(2), WorkerId(3)]);
    }

    #[test]
    fn executor_round_robins_parallel_stages() {
        let p = s_d3_s();
        assert_eq!(p.executor(StageId(0), MtxId(7)), WorkerId(0));
        assert_eq!(p.executor(StageId(1), MtxId(0)), WorkerId(1));
        assert_eq!(p.executor(StageId(1), MtxId(1)), WorkerId(2));
        assert_eq!(p.executor(StageId(1), MtxId(5)), WorkerId(3));
        assert_eq!(p.executor(StageId(2), MtxId(5)), WorkerId(4));
    }

    #[test]
    fn next_assigned_respects_replica_phase() {
        let p = s_d3_s();
        // Worker 2 is replica 1 of the parallel stage: executes 1, 4, 7, ...
        assert_eq!(p.next_assigned(WorkerId(2), MtxId(0)), MtxId(1));
        assert_eq!(p.next_assigned(WorkerId(2), MtxId(1)), MtxId(1));
        assert_eq!(p.next_assigned(WorkerId(2), MtxId(2)), MtxId(4));
        // The sequential worker executes everything.
        assert_eq!(p.next_assigned(WorkerId(0), MtxId(9)), MtxId(9));
    }

    #[test]
    fn ring_wraps_within_stage() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas: 4 })
            .ring(StageId(0));
        let p = cfg.build().unwrap();
        assert_eq!(p.ring_next(WorkerId(0)), Some(WorkerId(1)));
        assert_eq!(p.ring_next(WorkerId(3)), Some(WorkerId(0)));
    }

    #[test]
    fn no_ring_without_declaration() {
        let p = s_d3_s();
        assert_eq!(p.ring_next(WorkerId(1)), None);
    }

    #[test]
    fn single_replica_ring_has_no_successor() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas: 1 })
            .ring(StageId(0));
        let p = cfg.build().unwrap();
        assert_eq!(p.ring_next(WorkerId(0)), None);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            SystemConfig::new().build().unwrap_err(),
            ConfigError::NoStages
        );

        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas: 0 });
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::ZeroReplicas(StageId(0))
        );

        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential).ring(StageId(0));
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::BadRingStage(StageId(0))
        );

        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential).batch(0);
        assert_eq!(cfg.build().unwrap_err(), ConfigError::ZeroSize("batch"));

        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential).unit_shards(0);
        assert_eq!(
            cfg.build().unwrap_err(),
            ConfigError::ZeroSize("unit_shards")
        );
    }

    #[test]
    fn unit_shards_default_one_and_configurable() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential);
        assert_eq!(cfg.build().unwrap().unit_shards(), 1);
        cfg.unit_shards(4);
        assert_eq!(cfg.build().unwrap().unit_shards(), 4);
    }

    #[test]
    fn compaction_defaults_on_and_is_configurable() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential);
        assert!(cfg.build().unwrap().compaction());
        cfg.compaction(false);
        assert!(!cfg.build().unwrap().compaction());
    }

    #[test]
    fn shard_map_flows_into_the_shape() {
        let mut map = ShardMap::new();
        map.assign(dsmtx_uva::PageId(7), 3);
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential).shard_map(map.clone());
        let p = cfg.build().unwrap();
        assert_eq!(p.shard_map(), Some(&map));
        // Absent unless installed.
        let mut plain = SystemConfig::new();
        plain.stage(StageKind::Sequential);
        assert!(plain.build().unwrap().shard_map().is_none());
    }

    #[test]
    fn fault_config_flows_into_the_shape() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Sequential).faults(
            FaultConfig::new(0xABCD, FaultRates::only_drop(0.1))
                .target(FaultTarget::WorkerLinks)
                .recv_timeout_us(10_000),
        );
        let p = cfg.build().unwrap();
        let f = p.fault().expect("plan installed");
        assert_eq!(f.seed, 0xABCD);
        assert_eq!(f.target, FaultTarget::WorkerLinks);
        assert_eq!(
            p.recv_deadline(),
            Some(std::time::Duration::from_millis(10))
        );
        // Fault-free shape exposes nothing.
        let mut plain = SystemConfig::new();
        plain.stage(StageKind::Sequential);
        let p = plain.build().unwrap();
        assert!(p.fault().is_none());
        assert_eq!(p.recv_deadline(), None);
    }

    #[test]
    fn tls_shape_is_one_parallel_stage() {
        let mut cfg = SystemConfig::new();
        cfg.stage(StageKind::Parallel { replicas: 8 })
            .ring(StageId(0));
        let p = cfg.build().unwrap();
        assert_eq!(p.n_workers(), 8);
        assert_eq!(p.executor(StageId(0), MtxId(13)), WorkerId(5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_shape() -> impl Strategy<Value = PipelineShape> {
        proptest::collection::vec(
            prop_oneof![
                Just(StageKind::Sequential),
                (1u16..6).prop_map(|replicas| StageKind::Parallel { replicas }),
            ],
            1..5,
        )
        .prop_map(|stages| {
            let mut cfg = SystemConfig::new();
            for s in stages {
                cfg.stage(s);
            }
            cfg.build().expect("valid")
        })
    }

    proptest! {
        /// The executor mapping and the assignment schedule agree: every
        /// worker executes exactly the iterations mapped to it, in order.
        #[test]
        fn executor_and_assignment_are_consistent(shape in arb_shape(), span in 1u64..80) {
            for s in 0..shape.n_stages() {
                let stage = StageId(s);
                for i in 0..span {
                    let w = shape.executor(stage, MtxId(i));
                    prop_assert_eq!(shape.stage_of(w), stage);
                    // The worker's own schedule lands on i at i.
                    prop_assert_eq!(shape.next_assigned(w, MtxId(i)), MtxId(i));
                }
            }
        }

        /// next_assigned is the least fixed point: it returns the first
        /// iteration >= from that the worker executes, and nothing in
        /// between belongs to the worker.
        #[test]
        fn next_assigned_is_minimal(shape in arb_shape(), from in 0u64..60) {
            for w in 0..shape.n_workers() {
                let worker = WorkerId(w);
                let stage = shape.stage_of(worker);
                let next = shape.next_assigned(worker, MtxId(from));
                prop_assert!(next.0 >= from);
                prop_assert_eq!(shape.executor(stage, next), worker);
                for i in from..next.0 {
                    prop_assert_ne!(shape.executor(stage, MtxId(i)), worker);
                }
            }
        }

        /// Each iteration of each stage has exactly one executor, and the
        /// executors of a parallel stage rotate through all replicas.
        #[test]
        fn round_robin_covers_all_replicas(shape in arb_shape()) {
            for s in 0..shape.n_stages() {
                let stage = StageId(s);
                let replicas = shape.kind(stage).replicas() as u64;
                let seen: std::collections::HashSet<_> =
                    (0..replicas).map(|i| shape.executor(stage, MtxId(i))).collect();
                prop_assert_eq!(seen.len() as u64, replicas);
            }
        }

        /// Ring successors form a single cycle over the ring stage.
        #[test]
        fn ring_is_a_single_cycle(replicas in 2u16..8) {
            let mut cfg = SystemConfig::new();
            cfg.stage(StageKind::Sequential)
                .stage(StageKind::Parallel { replicas })
                .ring(StageId(1));
            let shape = cfg.build().unwrap();
            let start = shape.workers_of(StageId(1)).next().unwrap();
            let mut cur = start;
            let mut steps = 0;
            loop {
                cur = shape.ring_next(cur).expect("ring member");
                steps += 1;
                if cur == start {
                    break;
                }
                prop_assert!(steps <= replicas, "cycle longer than the stage");
            }
            prop_assert_eq!(steps, replicas);
        }
    }
}
