//! The try-commit unit: MTX validation off the critical path (§3.2).
//!
//! The unit maintains its own memory image — committed pages fetched on
//! demand from the commit unit (Copy-On-Access), overlaid with every
//! speculative store it has replayed. It consumes the per-subTX access
//! streams of all workers and replays them in global program order: MTX 0
//! stage 0, MTX 0 stage 1, …, MTX 1 stage 0, … Each replayed store updates
//! the image; each replayed load is a *value prediction* — if the image's
//! value at that program point differs from what the worker observed, a
//! true dependence manifested that the plan speculated away, and the unit
//! reports the conflict to the commit unit (§3.1's unified value
//! prediction and checking mechanism).
//!
//! False (anti/output) dependences never reach this unit: memory
//! versioning in the workers' private memories already broke them.
//!
//! # Sharding (§3.2)
//!
//! The paper notes the validation algorithm "is parallelizable": value
//! prediction of a load depends only on prior stores to the same address.
//! When `unit_shards > 1`, N instances of this unit run, each owning the
//! disjoint hash-partition of `PageId` space given by
//! [`dsmtx_mem::shard_of`]. Workers route each access record to the
//! responsible shard and send the `SubTxBegin`/`SubTxEnd` framing to
//! *every* shard, so each shard's program-order cursor advances through
//! every (MTX, stage) — a shard whose partition a subTX never touched
//! replays an empty stream. Each shard reports an independent per-MTX
//! verdict; the commit unit aggregates them (all-OK commits, any-bad
//! recovers).

use std::time::Instant;

use dsmtx_fabric::{RecvPort, SendPort};
use dsmtx_mem::{AccessKind, AccessRecord, Page, SpecMem};
use dsmtx_obs::Histogram;
use dsmtx_uva::{PageId, VAddr};
use fxhash::FxHashMap;

use crate::config::PipelineShape;
use crate::control::{ControlPlane, Interrupt};
use crate::ids::{MtxId, StageId, WorkerId};
use crate::poll::{wait_for, wait_for_deadline, Backoff};
use crate::trace::{Role, TraceKind, TraceSink};
use crate::wire::{AccessBlock, Msg, EPOCH_NONE};
use crate::worker::{classify, flush_port};

/// In-progress frame assembly for one worker's validation stream.
#[derive(Debug, Default)]
struct Assembly {
    open: Option<(MtxId, StageId)>,
    /// Attempt number carried by the frame header (trace context).
    attempt: u32,
    records: Vec<AccessRecord>,
}

/// One completed subTX stream awaiting its replay turn: either the
/// legacy per-record assembly or a packed block, replayed by cursor
/// straight out of the received frame with no per-record allocation.
#[derive(Debug)]
enum AccessStream {
    Records(Vec<AccessRecord>),
    Block(Box<AccessBlock>),
}

/// One detected conflict with its attribution context: which page
/// mismatched, which shard caught it, and which MTX wrote the page first
/// in the speculative window (the likely dependence source). Joined to
/// lifecycle spans by `(mtx, attempt)` and to the analyzer's predicted
/// conflict sites by `page` when `repro why` attributes the abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictRecord {
    /// The squashed MTX.
    pub mtx: u64,
    /// Its speculative attempt number (from the frame's trace context).
    pub attempt: u32,
    /// Pipeline stage whose stream exposed the mismatch.
    pub stage: u16,
    /// `PageId` of the conflicting load.
    pub page: u64,
    /// Try-commit shard owning that page partition.
    pub shard: u16,
    /// First speculative writer of that page in this validation window:
    /// `(mtx, attempt)` of the earliest replayed store, when any stores
    /// were replayed to the page before the mismatch.
    pub first_writer: Option<(u64, u32)>,
}

/// Per-shard statistics returned by [`TryCommitUnit::run`].
#[derive(Debug, Default)]
pub(crate) struct TryCommitCounters {
    /// MTXs this shard sent `VerdictOk` for.
    pub validated: u64,
    /// Conflicts this shard detected in its page partition.
    pub conflicts: u64,
    /// `PageId` of every conflicting load, in detection order (one entry
    /// per conflict, so repeats mean the same page conflicted across
    /// recoveries). The analyzer's certification pass checks this set
    /// against the conflict sites the partition linter predicted.
    pub conflict_pages: Vec<u64>,
    /// Full attribution context for every conflict this shard detected,
    /// in detection order (the "why" behind each `conflict_pages` entry).
    pub conflict_events: Vec<ConflictRecord>,
    /// COA pages fetched into the replay image.
    pub coa_fetches: u64,
    /// Stream arrival → program-order replay start, per subTX stream.
    pub replay_lag: Histogram,
    /// Final-stage stream arrival → verdict send, per MTX.
    pub verdict_latency: Histogram,
    /// Busy fraction of the shard thread, parts per million.
    pub busy_ppm: u64,
}

pub(crate) struct TryCommitUnit {
    shape: PipelineShape,
    ctrl: ControlPlane,
    trace: TraceSink,
    /// This shard's index (0 at `unit_shards = 1`).
    shard: u16,
    epoch: u64,
    /// Receive deadline under fault injection (`None` = wait forever).
    data_timeout: Option<std::time::Duration>,
    /// The replay image: committed pages + speculative stores in order.
    /// Covers only this shard's page partition.
    image: SpecMem,
    /// Validation streams, one per worker (this shard's partition only).
    val_in: Vec<(WorkerId, RecvPort<Msg>)>,
    /// Verdicts and COA requests to the commit unit.
    to_commit: SendPort<Msg>,
    /// COA replies from the commit unit.
    coa_in: RecvPort<Msg>,
    partial: FxHashMap<WorkerId, Assembly>,
    /// Completed subTX streams awaiting their replay turn, with their
    /// arrival time (for replay-lag / verdict-latency histograms).
    done: FxHashMap<(u64, u16), (AccessStream, u32, Instant)>,
    cursor_mtx: MtxId,
    cursor_stage: StageId,
    /// Attempt number of the stream currently replaying (trace context
    /// from the frame that delivered it).
    cursor_attempt: u32,
    /// First speculative writer per page in this validation window:
    /// `page -> (mtx, attempt)` of the earliest replayed store. Reset at
    /// recovery together with the image.
    first_writers: FxHashMap<u64, (u64, u32)>,
    /// Set after reporting a conflict: stop replaying, wait for recovery.
    poisoned: bool,
    counters: TryCommitCounters,
}

pub(crate) struct TryCommitWiring {
    pub shape: PipelineShape,
    pub ctrl: ControlPlane,
    pub trace: TraceSink,
    pub shard: u16,
    pub val_in: Vec<(WorkerId, RecvPort<Msg>)>,
    pub to_commit: SendPort<Msg>,
    pub coa_in: RecvPort<Msg>,
}

impl TryCommitUnit {
    pub(crate) fn new(w: TryCommitWiring) -> Self {
        let epoch = w.ctrl.epoch();
        let data_timeout = w.shape.recv_deadline();
        TryCommitUnit {
            shape: w.shape,
            ctrl: w.ctrl,
            trace: w.trace,
            shard: w.shard,
            epoch,
            data_timeout,
            image: SpecMem::new(),
            val_in: w.val_in,
            to_commit: w.to_commit,
            coa_in: w.coa_in,
            partial: FxHashMap::default(),
            done: FxHashMap::default(),
            cursor_mtx: MtxId(0),
            cursor_stage: StageId(0),
            cursor_attempt: 0,
            first_writers: FxHashMap::default(),
            poisoned: false,
            counters: TryCommitCounters::default(),
        }
    }

    /// The unit's thread body; returns this shard's statistics.
    pub(crate) fn run(mut self) -> TryCommitCounters {
        let started = Instant::now();
        let mut busy = std::time::Duration::ZERO;
        let mut backoff = Backoff::new();
        loop {
            if let Some(intr) = self.ctrl.poll(&mut self.epoch) {
                match intr {
                    Interrupt::Recovery { boundary } => {
                        self.do_recovery(boundary);
                        continue;
                    }
                    Interrupt::Terminate | Interrupt::ChannelDown => break,
                    // The status word never reads as a timeout.
                    Interrupt::FabricTimeout => unreachable!(),
                }
            }
            let turn = Instant::now();
            let mut progress = self.ingest();
            if !self.poisoned {
                match self.replay_ready() {
                    Ok(p) => progress |= p,
                    Err(Interrupt::Recovery { boundary }) => {
                        self.do_recovery(boundary);
                        continue;
                    }
                    Err(Interrupt::Terminate) => break,
                    Err(Interrupt::ChannelDown) => {
                        // A peer thread is gone: typed shutdown instead of
                        // a silent exit that leaves everyone else hanging.
                        self.ctrl.report_channel_down();
                        break;
                    }
                    Err(Interrupt::FabricTimeout) => {
                        // A transfer to/from the commit unit exhausted its
                        // retry budget: request a recovery round and wait
                        // for the commit unit to orchestrate it.
                        self.ctrl.raise_fabric_fault();
                        match self.await_status_change() {
                            Interrupt::Recovery { boundary } => {
                                self.do_recovery(boundary);
                                continue;
                            }
                            _ => break,
                        }
                    }
                }
            }
            if progress {
                busy += turn.elapsed();
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
        let total = started.elapsed().as_nanos().max(1);
        self.counters.busy_ppm = (busy.as_nanos().min(total) * 1_000_000 / total) as u64;
        self.counters.coa_fetches = self.image.faults_served();
        self.counters
    }

    /// Blocks until the control plane publishes a non-`Running` status.
    fn await_status_change(&mut self) -> Interrupt {
        let Self { ctrl, epoch, .. } = self;
        match wait_for(ctrl, epoch, || Ok(None::<()>)) {
            Ok(()) => unreachable!("step never yields"),
            Err(intr) => intr,
        }
    }

    /// Drains whatever is available on the validation queues into the
    /// assembly buffers. Never blocks.
    fn ingest(&mut self) -> bool {
        let mut progress = false;
        for (worker, port) in &mut self.val_in {
            loop {
                let msg = match port.try_consume() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(_) => {
                        // A dying peer is unrecoverable: publish the typed
                        // shutdown (once) so no thread blocks forever on
                        // the dead worker's silence.
                        self.ctrl.report_channel_down();
                        break;
                    }
                };
                progress = true;
                let asm = self.partial.entry(*worker).or_default();
                match msg {
                    Msg::SubTxBegin {
                        mtx,
                        attempt,
                        stage,
                    } => {
                        assert!(asm.open.is_none(), "nested subTX from {worker}");
                        asm.open = Some((mtx, stage));
                        asm.attempt = attempt;
                        asm.records.clear();
                    }
                    Msg::Load { addr, value } => asm.records.push(AccessRecord {
                        kind: AccessKind::Load,
                        addr: VAddr::from_raw(addr),
                        value,
                    }),
                    Msg::Store { addr, value } => asm.records.push(AccessRecord {
                        kind: AccessKind::Store,
                        addr: VAddr::from_raw(addr),
                        value,
                    }),
                    Msg::SubTxEnd { mtx, stage } => {
                        let open = asm.open.take().expect("subTX end without begin");
                        assert_eq!(open, (mtx, stage), "subTX framing mismatch");
                        self.done.insert(
                            (mtx.0, stage.0),
                            (
                                AccessStream::Records(std::mem::take(&mut asm.records)),
                                asm.attempt,
                                Instant::now(),
                            ),
                        );
                    }
                    Msg::ValBlock {
                        mtx,
                        attempt,
                        stage,
                        block,
                    } => {
                        // A packed frame is framing and records in one
                        // message: it completes the stream on arrival.
                        assert!(
                            asm.open.is_none(),
                            "packed frame inside an open unpacked subTX from {worker}"
                        );
                        self.done.insert(
                            (mtx.0, stage.0),
                            (AccessStream::Block(block), attempt, Instant::now()),
                        );
                    }
                    other => panic!("unexpected message on validation plane: {other:?}"),
                }
            }
        }
        progress
    }

    /// Replays every stream whose program-order turn has come.
    fn replay_ready(&mut self) -> Result<bool, Interrupt> {
        let mut progress = false;
        while let Some((stream, attempt, arrived)) =
            self.done.remove(&(self.cursor_mtx.0, self.cursor_stage.0))
        {
            progress = true;
            self.cursor_attempt = attempt;
            self.counters
                .replay_lag
                .record(arrived.elapsed().as_micros() as u64);
            if let Some(conflict_addr) = self.replay(&stream)? {
                // Conflict: tell the commit unit and freeze until it
                // orchestrates recovery.
                let page = conflict_addr.page().0;
                self.counters.conflicts += 1;
                self.counters.conflict_pages.push(page);
                self.counters.conflict_events.push(ConflictRecord {
                    mtx: self.cursor_mtx.0,
                    attempt,
                    stage: self.cursor_stage.0,
                    page,
                    shard: self.shard,
                    first_writer: self.first_writers.get(&page).copied(),
                });
                self.trace.record(
                    Role::TryCommit(self.shard),
                    Some(self.cursor_mtx),
                    attempt,
                    Some(self.cursor_stage),
                    TraceKind::Conflict,
                );
                self.send_to_commit(Msg::VerdictBad {
                    mtx: self.cursor_mtx,
                })?;
                self.poisoned = true;
                return Ok(true);
            }
            if self.cursor_stage.0 + 1 == self.shape.n_stages() {
                self.trace.record(
                    Role::TryCommit(self.shard),
                    Some(self.cursor_mtx),
                    attempt,
                    None,
                    TraceKind::Validated,
                );
                self.send_to_commit(Msg::VerdictOk {
                    mtx: self.cursor_mtx,
                })?;
                self.counters.validated += 1;
                self.counters
                    .verdict_latency
                    .record(arrived.elapsed().as_micros() as u64);
                self.cursor_mtx = self.cursor_mtx.next();
                self.cursor_stage = StageId(0);
            } else {
                self.cursor_stage = StageId(self.cursor_stage.0 + 1);
            }
        }
        Ok(progress)
    }

    /// Replays one subTX stream against the image. Returns the address of
    /// the first mismatching load (`None` when the stream validates).
    /// Packed blocks decode by cursor as they replay — no intermediate
    /// record vector is materialized.
    fn replay(&mut self, stream: &AccessStream) -> Result<Option<VAddr>, Interrupt> {
        match stream {
            AccessStream::Records(records) => {
                for r in records {
                    if let Some(addr) = self.replay_record(*r)? {
                        return Ok(Some(addr));
                    }
                }
            }
            AccessStream::Block(block) => {
                for r in block.iter() {
                    if let Some(addr) = self.replay_record(r)? {
                        return Ok(Some(addr));
                    }
                }
            }
        }
        Ok(None)
    }

    fn replay_record(&mut self, r: AccessRecord) -> Result<Option<VAddr>, Interrupt> {
        match r.kind {
            AccessKind::Store => {
                // Remember the earliest speculative writer of each page:
                // when a later load on the page mismatches, that writer is
                // the likely source of the manifested dependence.
                self.first_writers
                    .entry(r.addr.page().0)
                    .or_insert((self.cursor_mtx.0, self.cursor_attempt));
                self.image.apply_forwarded(r.addr, r.value);
            }
            AccessKind::Load => {
                let Self {
                    image,
                    to_commit,
                    coa_in,
                    ctrl,
                    epoch,
                    data_timeout,
                    ..
                } = self;
                let actual = image.read_unlogged(r.addr, |page| {
                    coa_fetch(to_commit, coa_in, ctrl, epoch, *data_timeout, page)
                })?;
                if actual != r.value {
                    return Ok(Some(r.addr));
                }
            }
        }
        Ok(None)
    }

    fn send_to_commit(&mut self, msg: Msg) -> Result<(), Interrupt> {
        self.to_commit.produce(msg).map_err(classify)?;
        let Self {
            to_commit,
            ctrl,
            epoch,
            ..
        } = self;
        flush_port(ctrl, epoch, to_commit)
    }

    /// §4.3 recovery: rendezvous, flush, re-protect, resume validating at
    /// the iteration after the re-executed one.
    fn do_recovery(&mut self, boundary: MtxId) {
        let barrier = self.ctrl.barrier().clone();
        barrier.wait(); // B1
        self.to_commit.clear();
        for (_, port) in &mut self.val_in {
            port.drain();
        }
        self.coa_in.drain();
        barrier.wait(); // B2
        self.image.rollback();
        self.partial.clear();
        self.done.clear();
        self.first_writers.clear();
        self.cursor_mtx = boundary.next();
        self.cursor_stage = StageId(0);
        self.poisoned = false;
        barrier.wait(); // B3
        self.epoch = u64::MAX;
    }
}

impl std::fmt::Debug for TryCommitUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TryCommitUnit")
            .field("cursor_mtx", &self.cursor_mtx)
            .field("cursor_stage", &self.cursor_stage)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// COA round trip to the commit unit (the try-commit image is initialized
/// lazily from committed pages, exactly like a worker's memory). The
/// shards keep no page cache — their image already retains replayed pages
/// until recovery — so every request advertises [`EPOCH_NONE`] and always
/// draws the full page.
fn coa_fetch(
    to_commit: &mut SendPort<Msg>,
    coa_in: &mut RecvPort<Msg>,
    ctrl: &ControlPlane,
    epoch: &mut u64,
    timeout: Option<std::time::Duration>,
    page: PageId,
) -> Result<Page, Interrupt> {
    to_commit
        .produce(Msg::CoaRequest {
            page: page.0,
            have: EPOCH_NONE,
        })
        .map_err(classify)?;
    flush_port(ctrl, epoch, to_commit)?;
    let reply = wait_for_deadline(ctrl, epoch, timeout, || {
        coa_in.try_consume().map_err(classify)
    })?;
    match reply {
        Msg::CoaReply { page: p, data, .. } => {
            assert_eq!(p, page.0, "out-of-order COA reply");
            Ok(*data)
        }
        other => panic!("expected CoaReply, got {other:?}"),
    }
}
