//! Execution tracing for the Figure-3 execution-model reproduction, for
//! test assertions about runtime invariants (e.g. commit order equals
//! iteration order), and as the raw feed for `TraceAnalysis` and the
//! Chrome-trace exporter.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

use crate::ids::{MtxId, StageId};

/// Which unit recorded an event. Compact (4 bytes) and structured, so
/// per-worker analysis needs no string parsing and recording needs no
/// leaked strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// A pipeline worker, by worker index.
    Worker(u32),
    /// A try-commit speculation-unit shard (program-order validation),
    /// by shard index. At `unit_shards = 1` the single shard is 0.
    TryCommit(u16),
    /// The commit unit (group transaction commit, COA service, recovery).
    Commit,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Worker(w) => write!(f, "worker{w}"),
            // Shard 0 keeps the legacy single-unit name so existing
            // traces, goldens, and fault schedules stay stable.
            Role::TryCommit(0) => f.write_str("try-commit"),
            Role::TryCommit(s) => write!(f, "try-commit{s}"),
            Role::Commit => f.write_str("commit"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A worker entered a subTX (`mtx_begin`).
    SubTxBegin,
    /// All upstream frames arrived; user code starts. The SubTxBegin →
    /// ExecBegin gap is the subTX's queue wait.
    ExecBegin,
    /// User code finished; the validation/commit flush starts. The
    /// FlushBegin → SubTxEnd gap is the flush cost.
    FlushBegin,
    /// A worker exited a subTX (`mtx_end`).
    SubTxEnd,
    /// Try-commit validated the MTX as conflict-free.
    Validated,
    /// Try-commit detected a conflict.
    Conflict,
    /// Commit unit committed the MTX.
    Committed,
    /// Commit unit started recovery for this boundary MTX (a data
    /// misspeculation squash).
    RecoveryStart,
    /// Commit unit started a recovery round because of a fabric fault
    /// (timeout / channel down), not a data conflict.
    FaultRecoveryStart,
    /// Commit unit finished recovery (pipeline restarting).
    RecoveryEnd,
    /// The system terminated after this MTX (if any).
    Terminated,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which unit recorded the event.
    pub role: Role,
    /// The MTX involved, when applicable.
    pub mtx: Option<MtxId>,
    /// Speculative attempt number of that MTX: 0 on first execution,
    /// bumped past every recovery so a retry's events chain onto a new
    /// span of the same MTX. Roles learn it from the wire frames'
    /// propagated trace context.
    pub attempt: u32,
    /// The stage involved, when applicable.
    pub stage: Option<StageId>,
    /// The event kind.
    pub kind: TraceKind,
    /// Microseconds since the sink's origin (run start). Relative
    /// timestamps survive serialization and are what the Chrome
    /// `trace_event` format wants.
    pub at_us: u64,
}

/// Default maximum buffered events (1 Mi events ≈ 40 MB); past it the
/// sink counts drops instead of growing without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct Buffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Shared trace sink; cloning shares the buffer. Disabled sinks record
/// nothing and cost one branch.
#[derive(Debug, Clone)]
pub struct TraceSink {
    buf: Option<Arc<Mutex<Buffer>>>,
    origin: Instant,
}

impl TraceSink {
    /// A recording sink with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recording sink buffering at most `capacity` events; further
    /// records are counted in [`dropped_events`](Self::dropped_events)
    /// rather than stored. The buffer is pre-sized (up to a sane bound)
    /// so the hot record path never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            buf: Some(Arc::new(Mutex::new(Buffer {
                // Pre-size, but never more than the cap and never a
                // silly allocation for huge caps.
                events: Vec::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
            }))),
            origin: Instant::now(),
        }
    }

    /// A no-op sink.
    pub fn disabled() -> Self {
        TraceSink {
            buf: None,
            origin: Instant::now(),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records one event (no-op when disabled, counted when full).
    /// `attempt` is the MTX's speculative attempt number (0 when no MTX
    /// is involved).
    pub fn record(
        &self,
        role: Role,
        mtx: Option<MtxId>,
        attempt: u32,
        stage: Option<StageId>,
        kind: TraceKind,
    ) {
        if let Some(buf) = &self.buf {
            let at_us = self.origin.elapsed().as_micros() as u64;
            let mut b = buf.lock();
            if b.events.len() < b.capacity {
                b.events.push(TraceEvent {
                    role,
                    mtx,
                    attempt,
                    stage,
                    kind,
                    at_us,
                });
            } else {
                b.dropped += 1;
            }
        }
    }

    /// Snapshots all events recorded so far, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .as_ref()
            .map_or_else(Vec::new, |b| b.lock().events.clone())
    }

    /// Events that arrived after the buffer filled and were discarded.
    pub fn dropped_events(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.lock().dropped)
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::disabled();
        t.record(Role::Commit, Some(MtxId(1)), 0, None, TraceKind::Committed);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let t = TraceSink::enabled();
        let w = Role::Worker(0);
        t.record(
            w,
            Some(MtxId(0)),
            0,
            Some(StageId(0)),
            TraceKind::SubTxBegin,
        );
        t.record(w, Some(MtxId(0)), 0, Some(StageId(0)), TraceKind::SubTxEnd);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, TraceKind::SubTxBegin);
        assert_eq!(ev[1].kind, TraceKind::SubTxEnd);
        assert!(ev[0].at_us <= ev[1].at_us);
    }

    #[test]
    fn clones_share_buffer() {
        let t = TraceSink::enabled();
        let t2 = t.clone();
        t2.record(Role::Commit, None, 0, None, TraceKind::Terminated);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn attempts_are_carried_on_events() {
        let t = TraceSink::enabled();
        let w = Role::Worker(0);
        t.record(
            w,
            Some(MtxId(4)),
            0,
            Some(StageId(0)),
            TraceKind::SubTxBegin,
        );
        t.record(
            w,
            Some(MtxId(4)),
            2,
            Some(StageId(0)),
            TraceKind::SubTxBegin,
        );
        let ev = t.events();
        assert_eq!(ev[0].attempt, 0);
        assert_eq!(ev[1].attempt, 2);
    }

    #[test]
    fn capacity_bounds_growth_and_counts_drops() {
        let t = TraceSink::with_capacity(3);
        for i in 0..10 {
            t.record(Role::Commit, Some(MtxId(i)), 0, None, TraceKind::Committed);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped_events(), 7);
        // The survivors are the earliest events.
        assert_eq!(t.events()[0].mtx, Some(MtxId(0)));
        assert_eq!(t.events()[2].mtx, Some(MtxId(2)));
    }

    #[test]
    fn role_display_matches_legacy_strings() {
        assert_eq!(Role::Worker(3).to_string(), "worker3");
        assert_eq!(Role::TryCommit(0).to_string(), "try-commit");
        assert_eq!(Role::TryCommit(2).to_string(), "try-commit2");
        assert_eq!(Role::Commit.to_string(), "commit");
    }
}
