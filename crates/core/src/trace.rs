//! Execution tracing for the Figure-3 execution-model reproduction, for
//! test assertions about runtime invariants (e.g. commit order equals
//! iteration order), and as the raw feed for `TraceAnalysis` and the
//! Chrome-trace exporter.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

use crate::ids::{MtxId, StageId};

/// Which unit recorded an event. Compact (4 bytes) and structured, so
/// per-worker analysis needs no string parsing and recording needs no
/// leaked strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// A pipeline worker, by worker index.
    Worker(u32),
    /// The try-commit unit (program-order validation).
    TryCommit,
    /// The commit unit (group transaction commit, COA service, recovery).
    Commit,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Worker(w) => write!(f, "worker{w}"),
            Role::TryCommit => f.write_str("try-commit"),
            Role::Commit => f.write_str("commit"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A worker entered a subTX (`mtx_begin`).
    SubTxBegin,
    /// A worker exited a subTX (`mtx_end`).
    SubTxEnd,
    /// Try-commit validated the MTX as conflict-free.
    Validated,
    /// Try-commit detected a conflict.
    Conflict,
    /// Commit unit committed the MTX.
    Committed,
    /// Commit unit started recovery for this boundary MTX.
    RecoveryStart,
    /// Commit unit finished recovery (pipeline restarting).
    RecoveryEnd,
    /// The system terminated after this MTX (if any).
    Terminated,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which unit recorded the event.
    pub role: Role,
    /// The MTX involved, when applicable.
    pub mtx: Option<MtxId>,
    /// The stage involved, when applicable.
    pub stage: Option<StageId>,
    /// The event kind.
    pub kind: TraceKind,
    /// Microseconds since the sink's origin (run start). Relative
    /// timestamps survive serialization and are what the Chrome
    /// `trace_event` format wants.
    pub at_us: u64,
}

/// Default maximum buffered events (1 Mi events ≈ 40 MB); past it the
/// sink counts drops instead of growing without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct Buffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Shared trace sink; cloning shares the buffer. Disabled sinks record
/// nothing and cost one branch.
#[derive(Debug, Clone)]
pub struct TraceSink {
    buf: Option<Arc<Mutex<Buffer>>>,
    origin: Instant,
}

impl TraceSink {
    /// A recording sink with the default capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recording sink buffering at most `capacity` events; further
    /// records are counted in [`dropped_events`](Self::dropped_events)
    /// rather than stored. The buffer is pre-sized (up to a sane bound)
    /// so the hot record path never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            buf: Some(Arc::new(Mutex::new(Buffer {
                // Pre-size, but never more than the cap and never a
                // silly allocation for huge caps.
                events: Vec::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
            }))),
            origin: Instant::now(),
        }
    }

    /// A no-op sink.
    pub fn disabled() -> Self {
        TraceSink {
            buf: None,
            origin: Instant::now(),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records one event (no-op when disabled, counted when full).
    pub fn record(&self, role: Role, mtx: Option<MtxId>, stage: Option<StageId>, kind: TraceKind) {
        if let Some(buf) = &self.buf {
            let at_us = self.origin.elapsed().as_micros() as u64;
            let mut b = buf.lock();
            if b.events.len() < b.capacity {
                b.events.push(TraceEvent {
                    role,
                    mtx,
                    stage,
                    kind,
                    at_us,
                });
            } else {
                b.dropped += 1;
            }
        }
    }

    /// Snapshots all events recorded so far, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .as_ref()
            .map_or_else(Vec::new, |b| b.lock().events.clone())
    }

    /// Events that arrived after the buffer filled and were discarded.
    pub fn dropped_events(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.lock().dropped)
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::disabled();
        t.record(Role::Commit, Some(MtxId(1)), None, TraceKind::Committed);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let t = TraceSink::enabled();
        let w = Role::Worker(0);
        t.record(w, Some(MtxId(0)), Some(StageId(0)), TraceKind::SubTxBegin);
        t.record(w, Some(MtxId(0)), Some(StageId(0)), TraceKind::SubTxEnd);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, TraceKind::SubTxBegin);
        assert_eq!(ev[1].kind, TraceKind::SubTxEnd);
        assert!(ev[0].at_us <= ev[1].at_us);
    }

    #[test]
    fn clones_share_buffer() {
        let t = TraceSink::enabled();
        let t2 = t.clone();
        t2.record(Role::Commit, None, None, TraceKind::Terminated);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn capacity_bounds_growth_and_counts_drops() {
        let t = TraceSink::with_capacity(3);
        for i in 0..10 {
            t.record(Role::Commit, Some(MtxId(i)), None, TraceKind::Committed);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped_events(), 7);
        // The survivors are the earliest events.
        assert_eq!(t.events()[0].mtx, Some(MtxId(0)));
        assert_eq!(t.events()[2].mtx, Some(MtxId(2)));
    }

    #[test]
    fn role_display_matches_legacy_strings() {
        assert_eq!(Role::Worker(3).to_string(), "worker3");
        assert_eq!(Role::TryCommit.to_string(), "try-commit");
        assert_eq!(Role::Commit.to_string(), "commit");
    }
}
