//! Execution tracing for the Figure-3 execution-model reproduction and for
//! test assertions about runtime invariants (e.g. commit order equals
//! iteration order).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

use crate::ids::{MtxId, StageId};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A worker entered a subTX (`mtx_begin`).
    SubTxBegin,
    /// A worker exited a subTX (`mtx_end`).
    SubTxEnd,
    /// Try-commit validated the MTX as conflict-free.
    Validated,
    /// Try-commit detected a conflict.
    Conflict,
    /// Commit unit committed the MTX.
    Committed,
    /// Commit unit started recovery for this boundary MTX.
    RecoveryStart,
    /// Commit unit finished recovery (pipeline restarting).
    RecoveryEnd,
    /// The system terminated after this MTX (if any).
    Terminated,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Role string: "worker3", "try-commit", "commit".
    pub who: &'static str,
    /// The MTX involved, when applicable.
    pub mtx: Option<MtxId>,
    /// The stage involved, when applicable.
    pub stage: Option<StageId>,
    /// The event kind.
    pub kind: TraceKind,
    /// Wall-clock timestamp.
    pub at: Instant,
}

/// Shared trace sink; cloning shares the buffer. Disabled sinks record
/// nothing and cost one branch.
#[derive(Debug, Clone)]
pub struct TraceSink {
    buf: Option<Arc<Mutex<Vec<TraceEvent>>>>,
    origin: Instant,
}

impl TraceSink {
    /// A recording sink.
    pub fn enabled() -> Self {
        TraceSink {
            buf: Some(Arc::new(Mutex::new(Vec::new()))),
            origin: Instant::now(),
        }
    }

    /// A no-op sink.
    pub fn disabled() -> Self {
        TraceSink {
            buf: None,
            origin: Instant::now(),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn record(
        &self,
        who: &'static str,
        mtx: Option<MtxId>,
        stage: Option<StageId>,
        kind: TraceKind,
    ) {
        if let Some(buf) = &self.buf {
            buf.lock().push(TraceEvent {
                who,
                mtx,
                stage,
                kind,
                at: Instant::now(),
            });
        }
    }

    /// Snapshots all events recorded so far, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.as_ref().map_or_else(Vec::new, |b| b.lock().clone())
    }

    /// Microseconds from sink creation to `event`.
    pub fn micros_since_origin(&self, event: &TraceEvent) -> u128 {
        event.at.duration_since(self.origin).as_micros()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::disabled();
        t.record("commit", Some(MtxId(1)), None, TraceKind::Committed);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let t = TraceSink::enabled();
        t.record("worker0", Some(MtxId(0)), Some(StageId(0)), TraceKind::SubTxBegin);
        t.record("worker0", Some(MtxId(0)), Some(StageId(0)), TraceKind::SubTxEnd);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, TraceKind::SubTxBegin);
        assert_eq!(ev[1].kind, TraceKind::SubTxEnd);
        assert!(ev[0].at <= ev[1].at);
    }

    #[test]
    fn clones_share_buffer() {
        let t = TraceSink::enabled();
        let t2 = t.clone();
        t2.record("commit", None, None, TraceKind::Terminated);
        assert_eq!(t.events().len(), 1);
    }
}
