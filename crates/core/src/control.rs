//! The control plane: system status, recovery epochs, interrupts.
//!
//! Clusters carry out-of-band control (small MPI control messages and
//! barriers) alongside the data plane. This reproduction models that
//! control network with one shared [`ControlPlane`] handle: the commit unit
//! is the only writer of the status word; every thread polls it at its
//! blocking points so that a thread stuck waiting for data can notice a
//! rollback or termination and unwind (§4.3 requires all threads to enter
//! recovery mode together).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsmtx_fabric::Barrier;

use crate::ids::MtxId;

/// Global execution phase, as published by the commit unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal speculative execution.
    Running,
    /// Rolling back: all MTXs at or after `boundary` are squashed; the
    /// commit unit will re-execute `boundary` sequentially.
    Recovering {
        /// The first squashed MTX.
        boundary: MtxId,
    },
    /// Shutting down: every MTX at or before `last` commits (already has),
    /// everything later is squashed and the loop is done.
    Terminating {
        /// The last committed MTX, or `None` when the loop ran zero
        /// iterations.
        last: Option<MtxId>,
    },
}

/// Why a blocked or running operation was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// Misspeculation recovery is starting; unwind to the recovery
    /// rendezvous.
    Recovery {
        /// The first squashed MTX.
        boundary: MtxId,
    },
    /// The parallel section is over; unwind to shutdown.
    Terminate,
    /// A communication peer vanished — only possible on internal error or
    /// panic of another thread.
    ChannelDown,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Recovery { boundary } => write!(f, "recovery from {boundary}"),
            Interrupt::Terminate => write!(f, "terminated"),
            Interrupt::ChannelDown => write!(f, "channel down"),
        }
    }
}

impl std::error::Error for Interrupt {}

#[derive(Debug)]
struct Shared {
    /// Bumped on every status change; threads poll this cheaply and only
    /// take the lock when it moved.
    epoch: AtomicU64,
    status: Mutex<Status>,
    /// Rendezvous for the recovery protocol; spans workers + try-commit +
    /// commit.
    barrier: Barrier,
    /// Count of completed recoveries (observable for reports/tests).
    recoveries: AtomicU64,
}

/// Shared control state; cloning yields another handle to the same plane.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    shared: Arc<Shared>,
}

impl ControlPlane {
    /// Creates a control plane whose recovery barrier spans `parties`
    /// threads (all workers + try-commit + commit).
    pub fn new(parties: usize) -> Self {
        ControlPlane {
            shared: Arc::new(Shared {
                epoch: AtomicU64::new(0),
                status: Mutex::new(Status::Running),
                barrier: Barrier::new(parties),
                recoveries: AtomicU64::new(0),
            }),
        }
    }

    /// Current status epoch; changes whenever the status changes.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Reads the current status.
    pub fn status(&self) -> Status {
        *self.shared.status.lock()
    }

    /// Commit-unit only: publishes a new status.
    pub fn publish(&self, status: Status) {
        *self.shared.status.lock() = status;
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Commit-unit only: records one completed recovery.
    pub fn record_recovery(&self) {
        self.shared.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of completed recoveries.
    pub fn recoveries(&self) -> u64 {
        self.shared.recoveries.load(Ordering::Relaxed)
    }

    /// The recovery-protocol barrier.
    pub fn barrier(&self) -> &Barrier {
        &self.shared.barrier
    }

    /// Converts a non-`Running` status into the interrupt a blocked thread
    /// should unwind with, or `None` while running.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self.status() {
            Status::Running => None,
            Status::Recovering { boundary } => Some(Interrupt::Recovery { boundary }),
            Status::Terminating { .. } => Some(Interrupt::Terminate),
        }
    }

    /// Polls for an interrupt only when the epoch moved since `seen_epoch`,
    /// updating `seen_epoch`. This keeps the hot path to one atomic load.
    #[inline]
    pub fn poll(&self, seen_epoch: &mut u64) -> Option<Interrupt> {
        let now = self.epoch();
        if now == *seen_epoch {
            return None;
        }
        *seen_epoch = now;
        self.interrupt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_running() {
        let cp = ControlPlane::new(1);
        assert_eq!(cp.status(), Status::Running);
        assert_eq!(cp.interrupt(), None);
        assert_eq!(cp.recoveries(), 0);
    }

    #[test]
    fn publish_changes_epoch_and_status() {
        let cp = ControlPlane::new(1);
        let e0 = cp.epoch();
        cp.publish(Status::Recovering { boundary: MtxId(5) });
        assert!(cp.epoch() > e0);
        assert_eq!(cp.status(), Status::Recovering { boundary: MtxId(5) });
        assert_eq!(
            cp.interrupt(),
            Some(Interrupt::Recovery { boundary: MtxId(5) })
        );
    }

    #[test]
    fn poll_fires_once_per_epoch() {
        let cp = ControlPlane::new(1);
        let mut seen = cp.epoch();
        assert_eq!(cp.poll(&mut seen), None);
        cp.publish(Status::Terminating {
            last: Some(MtxId(3)),
        });
        assert_eq!(cp.poll(&mut seen), Some(Interrupt::Terminate));
        // Epoch consumed: no repeat until the next change.
        assert_eq!(cp.poll(&mut seen), None);
    }

    #[test]
    fn returning_to_running_clears_interrupt() {
        let cp = ControlPlane::new(1);
        cp.publish(Status::Recovering { boundary: MtxId(0) });
        cp.publish(Status::Running);
        assert_eq!(cp.interrupt(), None);
    }

    #[test]
    fn clones_share_state() {
        let cp = ControlPlane::new(2);
        let cp2 = cp.clone();
        cp.publish(Status::Terminating { last: None });
        assert_eq!(cp2.status(), Status::Terminating { last: None });
        cp2.record_recovery();
        assert_eq!(cp.recoveries(), 1);
    }
}
