//! The control plane: system status, recovery epochs, interrupts.
//!
//! Clusters carry out-of-band control (small MPI control messages and
//! barriers) alongside the data plane. This reproduction models that
//! control network with one shared [`ControlPlane`] handle: the commit unit
//! is the only writer of the status word; every thread polls it at its
//! blocking points so that a thread stuck waiting for data can notice a
//! rollback or termination and unwind (§4.3 requires all threads to enter
//! recovery mode together).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dsmtx_fabric::Barrier;

use crate::ids::MtxId;

/// Global execution phase, as published by the commit unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal speculative execution.
    Running,
    /// Rolling back: all MTXs at or after `boundary` are squashed; the
    /// commit unit will re-execute `boundary` sequentially.
    Recovering {
        /// The first squashed MTX.
        boundary: MtxId,
    },
    /// Shutting down: every MTX at or before `last` commits (already has),
    /// everything later is squashed and the loop is done.
    Terminating {
        /// The last committed MTX, or `None` when the loop ran zero
        /// iterations.
        last: Option<MtxId>,
    },
}

/// Why a blocked or running operation was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// Misspeculation recovery is starting; unwind to the recovery
    /// rendezvous.
    Recovery {
        /// The first squashed MTX.
        boundary: MtxId,
    },
    /// The parallel section is over; unwind to shutdown.
    Terminate,
    /// A communication peer vanished — only possible on internal error or
    /// panic of another thread.
    ChannelDown,
    /// A fabric transfer exhausted its retry budget (or a receive missed
    /// its deadline). The thread must request a timeout-driven recovery
    /// round and rendezvous at the barriers.
    FabricTimeout,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Recovery { boundary } => write!(f, "recovery from {boundary}"),
            Interrupt::Terminate => write!(f, "terminated"),
            Interrupt::ChannelDown => write!(f, "channel down"),
            Interrupt::FabricTimeout => write!(f, "fabric timeout"),
        }
    }
}

impl std::error::Error for Interrupt {}

#[derive(Debug)]
struct Shared {
    /// Bumped on every status change; threads poll this cheaply and only
    /// take the lock when it moved.
    epoch: AtomicU64,
    status: Mutex<Status>,
    /// Rendezvous for the recovery protocol; spans workers + every
    /// try-commit shard + commit.
    barrier: Barrier,
    /// Count of completed recoveries (observable for reports/tests).
    recoveries: AtomicU64,
    /// Set by any thread whose fabric transfer timed out; consumed by the
    /// commit unit, which answers with a recovery round at its next
    /// commit boundary.
    fabric_fault: AtomicBool,
    /// Total fabric-timeout requests ever raised.
    fabric_faults: AtomicU64,
    /// Channels found disconnected while the system was running.
    channel_downs: AtomicU64,
}

/// Shared control state; cloning yields another handle to the same plane.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    shared: Arc<Shared>,
}

impl ControlPlane {
    /// Creates a control plane whose recovery barrier spans `parties`
    /// threads (all workers + all try-commit shards + commit).
    pub fn new(parties: usize) -> Self {
        ControlPlane {
            shared: Arc::new(Shared {
                epoch: AtomicU64::new(0),
                status: Mutex::new(Status::Running),
                barrier: Barrier::new(parties),
                recoveries: AtomicU64::new(0),
                fabric_fault: AtomicBool::new(false),
                fabric_faults: AtomicU64::new(0),
                channel_downs: AtomicU64::new(0),
            }),
        }
    }

    /// Current status epoch; changes whenever the status changes.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Reads the current status.
    pub fn status(&self) -> Status {
        *self.shared.status.lock()
    }

    /// Commit-unit only: publishes a new status.
    pub fn publish(&self, status: Status) {
        *self.shared.status.lock() = status;
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Commit-unit only: records one completed recovery.
    pub fn record_recovery(&self) {
        self.shared.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of completed recoveries.
    pub fn recoveries(&self) -> u64 {
        self.shared.recoveries.load(Ordering::Relaxed)
    }

    /// The recovery-protocol barrier.
    pub fn barrier(&self) -> &Barrier {
        &self.shared.barrier
    }

    /// Any thread: requests a timeout-driven recovery round. The commit
    /// unit consumes the request with [`ControlPlane::take_fabric_fault`]
    /// and recovers at its next commit boundary — never later, because a
    /// later boundary would silently lose uncommitted intermediate MTXs.
    pub fn raise_fabric_fault(&self) {
        self.shared.fabric_faults.fetch_add(1, Ordering::Relaxed);
        self.shared.fabric_fault.store(true, Ordering::Release);
    }

    /// Commit-unit only: consumes a pending fault request, if any.
    pub fn take_fabric_fault(&self) -> bool {
        self.shared.fabric_fault.swap(false, Ordering::AcqRel)
    }

    /// Commit-unit only: discards a stale fault request. Called inside the
    /// recovery protocol (after barrier B1, when every raiser is already
    /// rendezvousing and no new request can race in) so that a fault that
    /// landed *during* recovery entry does not trigger a redundant
    /// second round — this is what makes re-entry idempotent.
    pub fn clear_fabric_fault(&self) {
        self.shared.fabric_fault.store(false, Ordering::Release);
    }

    /// Total fabric-timeout requests ever raised.
    pub fn fabric_faults(&self) -> u64 {
        self.shared.fabric_faults.load(Ordering::Relaxed)
    }

    /// Any thread: reports a peer found disconnected while running. This
    /// is unrecoverable (the peer thread is gone), so it converts into a
    /// typed shutdown: `Terminating` is published exactly once, and only
    /// if the system was still `Running` (an in-progress recovery or
    /// termination takes precedence).
    pub fn report_channel_down(&self) {
        self.shared.channel_downs.fetch_add(1, Ordering::Relaxed);
        let mut status = self.shared.status.lock();
        if *status == Status::Running {
            *status = Status::Terminating { last: None };
            drop(status);
            self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Channels found disconnected while the system was running.
    pub fn channel_downs(&self) -> u64 {
        self.shared.channel_downs.load(Ordering::Relaxed)
    }

    /// Converts a non-`Running` status into the interrupt a blocked thread
    /// should unwind with, or `None` while running.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self.status() {
            Status::Running => None,
            Status::Recovering { boundary } => Some(Interrupt::Recovery { boundary }),
            Status::Terminating { .. } => Some(Interrupt::Terminate),
        }
    }

    /// Polls for an interrupt only when the epoch moved since `seen_epoch`,
    /// updating `seen_epoch`. This keeps the hot path to one atomic load.
    #[inline]
    pub fn poll(&self, seen_epoch: &mut u64) -> Option<Interrupt> {
        let now = self.epoch();
        if now == *seen_epoch {
            return None;
        }
        *seen_epoch = now;
        self.interrupt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_running() {
        let cp = ControlPlane::new(1);
        assert_eq!(cp.status(), Status::Running);
        assert_eq!(cp.interrupt(), None);
        assert_eq!(cp.recoveries(), 0);
    }

    #[test]
    fn publish_changes_epoch_and_status() {
        let cp = ControlPlane::new(1);
        let e0 = cp.epoch();
        cp.publish(Status::Recovering { boundary: MtxId(5) });
        assert!(cp.epoch() > e0);
        assert_eq!(cp.status(), Status::Recovering { boundary: MtxId(5) });
        assert_eq!(
            cp.interrupt(),
            Some(Interrupt::Recovery { boundary: MtxId(5) })
        );
    }

    #[test]
    fn poll_fires_once_per_epoch() {
        let cp = ControlPlane::new(1);
        let mut seen = cp.epoch();
        assert_eq!(cp.poll(&mut seen), None);
        cp.publish(Status::Terminating {
            last: Some(MtxId(3)),
        });
        assert_eq!(cp.poll(&mut seen), Some(Interrupt::Terminate));
        // Epoch consumed: no repeat until the next change.
        assert_eq!(cp.poll(&mut seen), None);
    }

    #[test]
    fn returning_to_running_clears_interrupt() {
        let cp = ControlPlane::new(1);
        cp.publish(Status::Recovering { boundary: MtxId(0) });
        cp.publish(Status::Running);
        assert_eq!(cp.interrupt(), None);
    }

    #[test]
    fn fabric_fault_raise_take_clear() {
        let cp = ControlPlane::new(1);
        assert!(!cp.take_fabric_fault());
        cp.raise_fabric_fault();
        cp.raise_fabric_fault();
        assert_eq!(cp.fabric_faults(), 2, "every raise is counted");
        assert!(cp.take_fabric_fault(), "flag is set");
        assert!(!cp.take_fabric_fault(), "take consumes the flag");
        cp.raise_fabric_fault();
        cp.clear_fabric_fault();
        assert!(!cp.take_fabric_fault(), "clear discards a stale request");
        assert_eq!(cp.fabric_faults(), 3);
    }

    #[test]
    fn channel_down_terminates_once_while_running() {
        let cp = ControlPlane::new(1);
        let e0 = cp.epoch();
        cp.report_channel_down();
        assert_eq!(cp.status(), Status::Terminating { last: None });
        assert_eq!(cp.channel_downs(), 1);
        let e1 = cp.epoch();
        assert!(e1 > e0, "publish bumps the epoch");
        // A second report counts but does not republish.
        cp.report_channel_down();
        assert_eq!(cp.channel_downs(), 2);
        assert_eq!(cp.epoch(), e1);
    }

    #[test]
    fn channel_down_defers_to_in_progress_recovery() {
        let cp = ControlPlane::new(1);
        cp.publish(Status::Recovering { boundary: MtxId(4) });
        cp.report_channel_down();
        assert_eq!(
            cp.status(),
            Status::Recovering { boundary: MtxId(4) },
            "recovery in progress is not clobbered"
        );
        assert_eq!(cp.channel_downs(), 1);
    }

    #[test]
    fn clones_share_state() {
        let cp = ControlPlane::new(2);
        let cp2 = cp.clone();
        cp.publish(Status::Terminating { last: None });
        assert_eq!(cp2.status(), Status::Terminating { last: None });
        cp2.record_recovery();
        assert_eq!(cp.recoveries(), 1);
    }
}
