//! The wire protocol: every message that crosses a thread boundary.
//!
//! Four logical planes share one message type so the whole system runs on a
//! single [`dsmtx_fabric::Mesh`]:
//!
//! * **data plane** (worker → later-stage worker, or TLS ring neighbour):
//!   per-iteration frames carrying forwarded uncommitted stores and
//!   `mtx_produce`d user values;
//! * **validation plane** (worker → try-commit shards): the
//!   program-ordered access stream of each subTX, framed by
//!   `SubTxBegin`/`SubTxEnd`. With `unit_shards > 1` each worker fans the
//!   stream out by `PageId` partition — framing goes to every shard so
//!   replay cursors advance in lockstep, records only to the owning
//!   shard;
//! * **commit plane** (worker → commit: store streams; each try-commit
//!   shard → commit: per-shard verdicts, aggregated into the group-commit
//!   decision; worker → commit: explicit misspeculation and loop exit
//!   events);
//! * **COA plane** (worker/try-commit shards ↔ commit): page requests and
//!   replies.

use dsmtx_mem::Page;

use crate::ids::{MtxId, StageId};

/// A message on any DSMTX queue.
#[derive(Debug)]
pub enum Msg {
    // ------------------------------------------------------ data plane --
    /// Start of the data frame for one iteration.
    FrameBegin {
        /// The iteration (MTX) the frame belongs to.
        mtx: MtxId,
    },
    /// An uncommitted speculative store forwarded to a later subTX
    /// (`mtx_writeAll`/`mtx_writeTo`).
    Forward {
        /// Raw [`dsmtx_uva::VAddr`] bits.
        addr: u64,
        /// The stored value.
        value: u64,
    },
    /// A user value sent with `mtx_produce`.
    User {
        /// The produced value.
        value: u64,
    },
    /// End of the data frame for one iteration.
    FrameEnd {
        /// The iteration (MTX) the frame belongs to.
        mtx: MtxId,
    },

    // ------------------------------------------------ validation plane --
    /// Start of a subTX access stream.
    SubTxBegin {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Pipeline stage executing the subTX.
        stage: StageId,
    },
    /// A speculative load observation (value prediction to validate).
    Load {
        /// Raw address bits.
        addr: u64,
        /// The value the worker observed.
        value: u64,
    },
    /// A speculative store.
    Store {
        /// Raw address bits.
        addr: u64,
        /// The stored value.
        value: u64,
    },
    /// End of a subTX access stream.
    SubTxEnd {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Pipeline stage executing the subTX.
        stage: StageId,
    },

    // ---------------------------------------------------- commit plane --
    /// Try-commit verdict: the MTX is conflict-free.
    VerdictOk {
        /// The validated MTX.
        mtx: MtxId,
    },
    /// Try-commit verdict: a speculative load mismatched the committed
    /// value; the MTX (and everything later) must roll back.
    VerdictBad {
        /// The conflicting MTX.
        mtx: MtxId,
    },
    /// A worker detected misspeculation itself (`mtx_misspec`), e.g. failed
    /// control-flow speculation.
    WorkerMisspec {
        /// The misspeculated MTX.
        mtx: MtxId,
    },
    /// Footer of a store stream on the commit plane. Carries the loop-exit
    /// decision (`mtx_terminate`) in the same message as stream
    /// completeness so the commit unit can never commit an iteration
    /// without knowing it was the last one.
    SubTxDone {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Pipeline stage executing the subTX.
        stage: StageId,
        /// True when this subTX observed the sequential loop exit at this
        /// iteration: commit everything at or before `mtx`, squash the
        /// rest, stop.
        exit: bool,
    },

    // ------------------------------------------------------- COA plane --
    /// Copy-On-Access request: the sender faulted on `page`.
    CoaRequest {
        /// Raw [`dsmtx_uva::PageId`] bits.
        page: u64,
    },
    /// Copy-On-Access reply carrying the committed page.
    CoaReply {
        /// Raw page id bits.
        page: u64,
        /// The committed page image.
        data: Box<Page>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_small_enough_to_queue_cheaply() {
        // The box keeps page payloads out of line so a queue slot stays
        // cache-line sized.
        assert!(
            std::mem::size_of::<Msg>() <= 32,
            "{}",
            std::mem::size_of::<Msg>()
        );
    }

    #[test]
    fn coa_reply_carries_page_by_box() {
        let msg = Msg::CoaReply {
            page: 7,
            data: Box::new(Page::zeroed()),
        };
        match msg {
            Msg::CoaReply { page, data } => {
                assert_eq!(page, 7);
                assert_eq!(data.word(0), 0);
            }
            _ => unreachable!(),
        }
    }
}
