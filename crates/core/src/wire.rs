//! The wire protocol: every message that crosses a thread boundary.
//!
//! Four logical planes share one message type so the whole system runs on a
//! single [`dsmtx_fabric::Mesh`]:
//!
//! * **data plane** (worker → later-stage worker, or TLS ring neighbour):
//!   per-iteration frames carrying forwarded uncommitted stores and
//!   `mtx_produce`d user values;
//! * **validation plane** (worker → try-commit shards): the
//!   program-ordered access stream of each subTX. The compacted default
//!   ships one [`Msg::ValBlock`] per (subTX, shard) — a packed
//!   [`AccessBlock`] that carries the framing and every surviving record
//!   in a single message. The legacy unpacked encoding
//!   (`SubTxBegin`/`Load`/`Store`/`SubTxEnd`, one message per record)
//!   remains available for differential testing. With `unit_shards > 1`
//!   each worker fans the stream out by `PageId` partition — a frame
//!   (possibly empty) goes to every shard so replay cursors advance in
//!   lockstep, records only to the owning shard;
//! * **commit plane** (worker → commit: store streams, packed as
//!   [`Msg::CommitBlock`] or unpacked; each try-commit shard → commit:
//!   per-shard verdicts, aggregated into the group-commit decision;
//!   worker → commit: explicit misspeculation and loop exit events);
//! * **COA plane** (worker/try-commit shards ↔ commit): page requests and
//!   replies. Requests carry the epoch tag of the requester's cached copy
//!   (if any); the commit unit answers with the full page
//!   ([`Msg::CoaReply`]) or a payload-free revalidation
//!   ([`Msg::CoaFresh`]) when the cached copy is still current. Both
//!   replies piggyback the commit unit's current commit epoch.

use dsmtx_mem::{AccessKind, AccessRecord, Page};
use dsmtx_uva::VAddr;

use crate::ids::{MtxId, StageId};

/// Epoch tag meaning "no cached copy" on a [`Msg::CoaRequest`]: the commit
/// unit must ship the full page.
pub const EPOCH_NONE: u64 = u64::MAX;

/// A packed subTX access stream: struct-of-arrays with delta-encoded
/// addresses, raw values, and a 2-bit kind stream.
///
/// The wire layout, per record:
///
/// * **kind**: 2 bits, packed four-per-byte LSB-first (`01` load, `10`
///   store; `00`/`11` are invalid),
/// * **address**: the difference against the previous record's raw
///   [`VAddr`] bits (the first record is a delta against 0), zigzag-mapped
///   and LEB128 varint encoded — consecutive accesses are usually nearby,
///   so most deltas fit in 1–3 bytes instead of 8,
/// * **value**: raw `u64` (values are unpredictable; compressing them
///   would buy little and cost cycles).
///
/// Encoding is append-only via [`AccessBlock::push`]; decoding is a
/// cursor-style iterator ([`AccessBlock::iter`]) that yields
/// [`AccessRecord`]s without allocating, so the try-commit replay runs
/// straight out of the received block.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AccessBlock {
    /// Number of records.
    len: u32,
    /// 2-bit kinds, four per byte, LSB-first.
    kinds: Vec<u8>,
    /// Zigzag + LEB128 deltas of the raw address bits.
    addrs: Vec<u8>,
    /// Raw store/observed values, one per record.
    values: Vec<u64>,
    /// Encoder state: the previous record's raw address.
    prev_addr: u64,
}

const KIND_LOAD: u8 = 0b01;
const KIND_STORE: u8 = 0b10;

#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

impl AccessBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the block.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the block carries no records (still a valid frame: the
    /// receiving shard's cursor advances past an empty subTX).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payload bytes this block occupies on the wire (excluding the
    /// fixed-size enum slot that carries it).
    pub fn wire_bytes(&self) -> u64 {
        (std::mem::size_of::<u32>() + self.kinds.len() + self.addrs.len()) as u64
            + 8 * self.values.len() as u64
    }

    /// Appends one record.
    pub fn push(&mut self, kind: AccessKind, addr: u64, value: u64) {
        let k = match kind {
            AccessKind::Load => KIND_LOAD,
            AccessKind::Store => KIND_STORE,
        };
        let slot = (self.len % 4) as usize;
        if slot == 0 {
            self.kinds.push(0);
        }
        *self.kinds.last_mut().expect("pushed above") |= k << (2 * slot);
        let mut z = zigzag(addr.wrapping_sub(self.prev_addr) as i64);
        loop {
            let byte = (z & 0x7F) as u8;
            z >>= 7;
            if z == 0 {
                self.addrs.push(byte);
                break;
            }
            self.addrs.push(byte | 0x80);
        }
        self.prev_addr = addr;
        self.values.push(value);
        self.len += 1;
    }

    /// Clears the block for reuse, keeping its capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.kinds.clear();
        self.addrs.clear();
        self.values.clear();
        self.prev_addr = 0;
    }

    /// Decodes the records in order, without allocating.
    pub fn iter(&self) -> AccessBlockIter<'_> {
        AccessBlockIter {
            block: self,
            i: 0,
            addr_pos: 0,
            prev_addr: 0,
        }
    }
}

/// Decoding cursor over an [`AccessBlock`].
#[derive(Debug)]
pub struct AccessBlockIter<'a> {
    block: &'a AccessBlock,
    i: u32,
    addr_pos: usize,
    prev_addr: u64,
}

impl Iterator for AccessBlockIter<'_> {
    type Item = AccessRecord;

    fn next(&mut self) -> Option<AccessRecord> {
        if self.i >= self.block.len {
            return None;
        }
        let i = self.i as usize;
        let kind = match (self.block.kinds[i / 4] >> (2 * (i % 4))) & 0b11 {
            KIND_LOAD => AccessKind::Load,
            KIND_STORE => AccessKind::Store,
            k => panic!("corrupt kind stream: {k:#b} at record {i}"),
        };
        let mut z = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.block.addrs[self.addr_pos];
            self.addr_pos += 1;
            z |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        let addr = self.prev_addr.wrapping_add(unzigzag(z) as u64);
        self.prev_addr = addr;
        self.i += 1;
        Some(AccessRecord {
            kind,
            addr: VAddr::from_raw(addr),
            value: self.block.values[i],
        })
    }
}

/// A message on any DSMTX queue.
#[derive(Debug)]
pub enum Msg {
    // ------------------------------------------------------ data plane --
    /// Start of the data frame for one iteration.
    FrameBegin {
        /// The iteration (MTX) the frame belongs to.
        mtx: MtxId,
    },
    /// An uncommitted speculative store forwarded to a later subTX
    /// (`mtx_writeAll`/`mtx_writeTo`).
    Forward {
        /// Raw [`dsmtx_uva::VAddr`] bits.
        addr: u64,
        /// The stored value.
        value: u64,
    },
    /// A user value sent with `mtx_produce`.
    User {
        /// The produced value.
        value: u64,
    },
    /// End of the data frame for one iteration.
    FrameEnd {
        /// The iteration (MTX) the frame belongs to.
        mtx: MtxId,
    },

    // ------------------------------------------------ validation plane --
    /// Start of a subTX access stream (legacy unpacked encoding).
    SubTxBegin {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Speculative attempt number (trace context): retries after a
        /// recovery carry a larger attempt so downstream roles chain
        /// their lifecycle events onto the right span.
        attempt: u32,
        /// Pipeline stage executing the subTX.
        stage: StageId,
    },
    /// A speculative load observation (value prediction to validate).
    Load {
        /// Raw address bits.
        addr: u64,
        /// The value the worker observed.
        value: u64,
    },
    /// A speculative store.
    Store {
        /// Raw address bits.
        addr: u64,
        /// The stored value.
        value: u64,
    },
    /// End of a subTX access stream (legacy unpacked encoding).
    SubTxEnd {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Pipeline stage executing the subTX.
        stage: StageId,
    },
    /// A complete packed subTX access stream: framing plus every surviving
    /// record in one message. Replaces `SubTxBegin` + per-record
    /// `Load`/`Store` + `SubTxEnd` on the compacted validation plane.
    ValBlock {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Speculative attempt number (propagated trace context).
        attempt: u32,
        /// Pipeline stage executing the subTX.
        stage: StageId,
        /// The packed records (possibly empty: the frame still advances
        /// the receiving shard's replay cursor).
        block: Box<AccessBlock>,
    },

    // ---------------------------------------------------- commit plane --
    /// Try-commit verdict: the MTX is conflict-free.
    VerdictOk {
        /// The validated MTX.
        mtx: MtxId,
    },
    /// Try-commit verdict: a speculative load mismatched the committed
    /// value; the MTX (and everything later) must roll back.
    VerdictBad {
        /// The conflicting MTX.
        mtx: MtxId,
    },
    /// A worker detected misspeculation itself (`mtx_misspec`), e.g. failed
    /// control-flow speculation.
    WorkerMisspec {
        /// The misspeculated MTX.
        mtx: MtxId,
        /// Speculative attempt number (propagated trace context).
        attempt: u32,
    },
    /// Footer of a store stream on the commit plane (legacy unpacked
    /// encoding). Carries the loop-exit decision (`mtx_terminate`) in the
    /// same message as stream completeness so the commit unit can never
    /// commit an iteration without knowing it was the last one.
    SubTxDone {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Speculative attempt number (propagated trace context).
        attempt: u32,
        /// Pipeline stage executing the subTX.
        stage: StageId,
        /// True when this subTX observed the sequential loop exit at this
        /// iteration: commit everything at or before `mtx`, squash the
        /// rest, stop.
        exit: bool,
    },
    /// A complete packed store stream on the commit plane: framing, the
    /// coalesced write-set, and the loop-exit decision in one message.
    /// Replaces `SubTxBegin` + per-store `Store` + `SubTxDone`.
    CommitBlock {
        /// Enclosing MTX.
        mtx: MtxId,
        /// Speculative attempt number (propagated trace context).
        attempt: u32,
        /// Pipeline stage executing the subTX.
        stage: StageId,
        /// True when this subTX observed the sequential loop exit.
        exit: bool,
        /// The coalesced stores (kind stream is all-store).
        block: Box<AccessBlock>,
    },

    // ------------------------------------------------------- COA plane --
    /// Copy-On-Access request: the sender faulted on `page`.
    CoaRequest {
        /// Raw [`dsmtx_uva::PageId`] bits.
        page: u64,
        /// Commit-epoch tag of the sender's cached copy of this page, or
        /// [`EPOCH_NONE`] when it holds none: the commit unit answers with
        /// [`Msg::CoaFresh`] instead of the full page when the cached copy
        /// is still current.
        have: u64,
    },
    /// Copy-On-Access reply carrying the committed page.
    CoaReply {
        /// Raw page id bits.
        page: u64,
        /// The commit unit's current commit epoch; tags the receiver's
        /// cached copy.
        epoch: u64,
        /// The committed page image.
        data: Box<Page>,
    },
    /// Payload-free Copy-On-Access reply: the requester's cached copy
    /// (tagged `have`) is still the current committed image, so only the
    /// refreshed epoch crosses the wire instead of 4 KiB of page data.
    CoaFresh {
        /// Raw page id bits.
        page: u64,
        /// The commit unit's current commit epoch; re-tags the cached copy.
        epoch: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_small_enough_to_queue_cheaply() {
        // The boxes keep page and block payloads out of line so a queue
        // slot stays cache-line sized.
        assert!(
            std::mem::size_of::<Msg>() <= 32,
            "{}",
            std::mem::size_of::<Msg>()
        );
    }

    #[test]
    fn coa_reply_carries_page_by_box() {
        let msg = Msg::CoaReply {
            page: 7,
            epoch: 3,
            data: Box::new(Page::zeroed()),
        };
        match msg {
            Msg::CoaReply { page, epoch, data } => {
                assert_eq!(page, 7);
                assert_eq!(epoch, 3);
                assert_eq!(data.word(0), 0);
            }
            _ => unreachable!(),
        }
    }

    fn roundtrip(records: &[(AccessKind, u64, u64)]) {
        let mut block = AccessBlock::new();
        for &(k, a, v) in records {
            block.push(k, a, v);
        }
        assert_eq!(block.len() as usize, records.len());
        let decoded: Vec<(AccessKind, u64, u64)> = block
            .iter()
            .map(|r| (r.kind, r.addr.raw(), r.value))
            .collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn block_roundtrips_records_exactly() {
        roundtrip(&[]);
        roundtrip(&[(AccessKind::Load, 0, 0)]);
        roundtrip(&[
            (AccessKind::Load, 4096, 17),
            (AccessKind::Store, 4104, 23),
            (AccessKind::Store, 4096, 99),
            (AccessKind::Load, u64::MAX, u64::MAX),
            (AccessKind::Store, 0, 1),
            (AccessKind::Load, 1 << 62, 7),
        ]);
    }

    #[test]
    fn block_roundtrips_a_pseudorandom_stream() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut records = Vec::new();
        for i in 0..1000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let kind = if x & 1 == 0 {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            records.push((kind, x, x.wrapping_mul(i)));
        }
        roundtrip(&records);
    }

    #[test]
    fn nearby_addresses_encode_in_few_bytes() {
        // A word-strided access stream: each delta is 8 bytes, which
        // zigzag+varint encodes in one byte — the whole point of the
        // delta encoding.
        let mut block = AccessBlock::new();
        for i in 0..64u64 {
            block.push(AccessKind::Store, 0x1000 + 8 * i, i);
        }
        // 64 values (8 B) + 16 kind bytes + ~65 addr bytes + 4 B header:
        // well under half the unpacked 64 * 32 B.
        assert!(
            block.wire_bytes() < 64 * 32 / 2,
            "wire_bytes = {}",
            block.wire_bytes()
        );
        // First delta (0x1000) takes 2 varint bytes; the remaining 63
        // deltas (+8 zigzagged = 16) take 1 byte each.
        assert_eq!(block.addrs.len(), 2 + 63);
    }

    #[test]
    fn clear_resets_the_encoder_state() {
        let mut block = AccessBlock::new();
        block.push(AccessKind::Load, 123, 1);
        block.clear();
        assert!(block.is_empty());
        block.push(AccessKind::Store, 456, 2);
        let r: Vec<_> = block.iter().collect();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].addr.raw(), 456);
        assert_eq!(r[0].kind, AccessKind::Store);
    }
}
