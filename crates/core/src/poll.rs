//! Cooperative polling helpers.
//!
//! Every blocking point in the runtime is a poll loop: make progress if a
//! message is available, otherwise check the control plane for interrupts
//! and back off. This keeps all threads interruptible for the recovery
//! protocol (a thread stuck in a blocking receive could never reach the
//! recovery barriers) and plays fairly on machines with few cores.

use crate::control::{ControlPlane, Interrupt};

/// True when this process has exactly one CPU to run on.
///
/// Spinning only makes sense when the producer we are waiting for can run
/// *concurrently* on another core; on a single-core host a spin round
/// burns the very quantum the producer needs, so the backoff skips
/// straight to yielding.
fn single_core() -> bool {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CORES: AtomicUsize = AtomicUsize::new(0);
    let mut n = CORES.load(Ordering::Relaxed);
    if n == 0 {
        n = std::thread::available_parallelism().map_or(1, |c| c.get());
        CORES.store(n, Ordering::Relaxed);
    }
    n == 1
}

/// Exponential-ish backoff: spin briefly, then yield, then sleep.
#[derive(Debug, Default)]
pub struct Backoff {
    rounds: u32,
}

impl Backoff {
    /// A fresh backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Waits an amount appropriate to how long we have been waiting.
    pub fn wait(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds < 16 && !single_core() {
            std::hint::spin_loop();
        } else if self.rounds < 256 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Resets after progress was made.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

/// Polls `step` until it yields a value, backing off between attempts and
/// aborting with an [`Interrupt`] when the control plane changes state.
///
/// `seen_epoch` is the caller's cached control epoch (see
/// [`ControlPlane::poll`]).
///
/// # Errors
///
/// Returns the interrupt published on the control plane.
pub fn wait_for<T>(
    ctrl: &ControlPlane,
    seen_epoch: &mut u64,
    step: impl FnMut() -> Result<Option<T>, Interrupt>,
) -> Result<T, Interrupt> {
    wait_for_deadline(ctrl, seen_epoch, None, step)
}

/// Like [`wait_for`], but gives up with [`Interrupt::FabricTimeout`] once
/// `timeout` elapses with no progress (when `Some`). This is the
/// receive-side half of the fault model: a peer silenced by injected
/// faults (or a real hang) must not pin this thread forever — the timeout
/// converts the silence into a recovery request.
///
/// The deadline clock starts at the first unproductive attempt, so a
/// ready value never pays for an `Instant::now`.
///
/// # Errors
///
/// Returns the interrupt published on the control plane, or
/// [`Interrupt::FabricTimeout`] on deadline expiry.
pub fn wait_for_deadline<T>(
    ctrl: &ControlPlane,
    seen_epoch: &mut u64,
    timeout: Option<std::time::Duration>,
    mut step: impl FnMut() -> Result<Option<T>, Interrupt>,
) -> Result<T, Interrupt> {
    let mut backoff = Backoff::new();
    let mut deadline: Option<std::time::Instant> = None;
    loop {
        if let Some(v) = step()? {
            return Ok(v);
        }
        if let Some(intr) = ctrl.poll(seen_epoch) {
            return Err(intr);
        }
        if let Some(limit) = timeout {
            let now = std::time::Instant::now();
            match deadline {
                None => deadline = Some(now + limit),
                Some(d) if now >= d => return Err(Interrupt::FabricTimeout),
                Some(_) => {}
            }
        }
        backoff.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Status;
    use crate::ids::MtxId;

    #[test]
    fn wait_for_returns_value_when_ready() {
        let ctrl = ControlPlane::new(1);
        let mut seen = ctrl.epoch();
        let mut tries = 0;
        let v = wait_for(&ctrl, &mut seen, || {
            tries += 1;
            Ok(if tries >= 3 { Some(42) } else { None })
        })
        .unwrap();
        assert_eq!(v, 42);
        assert_eq!(tries, 3);
    }

    #[test]
    fn wait_for_aborts_on_interrupt() {
        let ctrl = ControlPlane::new(1);
        let mut seen = ctrl.epoch();
        ctrl.publish(Status::Recovering { boundary: MtxId(2) });
        let r: Result<(), _> = wait_for(&ctrl, &mut seen, || Ok(None));
        assert_eq!(r.unwrap_err(), Interrupt::Recovery { boundary: MtxId(2) });
    }

    #[test]
    fn wait_for_propagates_step_errors() {
        let ctrl = ControlPlane::new(1);
        let mut seen = ctrl.epoch();
        let r: Result<(), _> = wait_for(&ctrl, &mut seen, || Err(Interrupt::ChannelDown));
        assert_eq!(r.unwrap_err(), Interrupt::ChannelDown);
    }

    #[test]
    fn wait_for_deadline_times_out_on_silence() {
        let ctrl = ControlPlane::new(1);
        let mut seen = ctrl.epoch();
        let started = std::time::Instant::now();
        let r: Result<(), _> = wait_for_deadline(
            &ctrl,
            &mut seen,
            Some(std::time::Duration::from_millis(10)),
            || Ok(None),
        );
        assert_eq!(r.unwrap_err(), Interrupt::FabricTimeout);
        assert!(started.elapsed() >= std::time::Duration::from_millis(10));
    }

    #[test]
    fn wait_for_deadline_prefers_data_and_interrupts() {
        let ctrl = ControlPlane::new(1);
        let mut seen = ctrl.epoch();
        let v = wait_for_deadline(
            &ctrl,
            &mut seen,
            Some(std::time::Duration::from_secs(10)),
            || Ok(Some(7)),
        )
        .unwrap();
        assert_eq!(v, 7);
        ctrl.publish(Status::Terminating { last: None });
        let r: Result<(), _> = wait_for_deadline(
            &ctrl,
            &mut seen,
            Some(std::time::Duration::from_secs(10)),
            || Ok(None),
        );
        assert_eq!(r.unwrap_err(), Interrupt::Terminate);
    }

    #[test]
    fn backoff_rounds_accumulate() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.wait();
        }
        b.reset();
        // After reset the next waits are cheap spins again (no panic, no
        // sleep): just exercise the path.
        b.wait();
    }
}
