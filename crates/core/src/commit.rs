//! The commit unit: group transaction commit, Copy-On-Access service, and
//! recovery orchestration.
//!
//! The commit unit owns the only committed memory image. It executed the
//! sequential pre-loop code (in this reproduction: the caller built
//! [`dsmtx_mem::MasterMem`] before the run), serves COA page requests from
//! workers and the try-commit unit, buffers the store streams of every
//! subTX, and — once *every* try-commit shard validates an MTX's slice of
//! the address space — applies its subTX write-sets in program order
//! (group transaction commit, §3.1: last update to an address wins). A
//! conflict verdict from any shard, or an explicit worker
//! misspeculation, makes it orchestrate the §4.3 recovery protocol and
//! re-execute the squashed iteration single-threaded; all shards
//! participate in the recovery barriers.

use std::collections::BTreeMap;

use dsmtx_fabric::{RecvPort, SendPort};
use dsmtx_mem::MasterMem;
use dsmtx_uva::{PageId, VAddr};
use fxhash::FxHashMap;

use crate::config::PipelineShape;
use crate::control::{ControlPlane, Interrupt, Status};
use crate::ids::{MtxId, StageId, WorkerId};
use crate::poll::Backoff;
use crate::program::{CommitHook, IterOutcome, RecoveryFn};
use crate::trace::{Role, TraceKind, TraceSink};
use crate::wire::{Msg, EPOCH_NONE};

/// Per-MTX events gathered from workers.
#[derive(Debug, Default, Clone, Copy)]
struct Events {
    misspec: bool,
    exit: bool,
    /// Speculative attempt number carried by the worker frames (trace
    /// context), echoed on this unit's lifecycle events for the MTX.
    attempt: u32,
}

/// Counters reported at the end of the run.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CommitCounters {
    pub committed: u64,
    pub recovered_iterations: u64,
    pub coa_pages_served: u64,
    pub last_iteration: Option<MtxId>,
    /// Conflicts detected by the try-commit unit's value validation.
    pub validation_conflicts: u64,
    /// Misspeculations declared explicitly by workers (`mtx_misspec`).
    pub worker_misspecs: u64,
    /// Recovery rounds run in answer to fabric-timeout requests (as
    /// opposed to misspeculation verdicts).
    pub fault_recoveries: u64,
}

/// In-progress store-stream assembly for one worker.
#[derive(Debug, Default)]
struct Assembly {
    open: Option<(MtxId, StageId)>,
    attempt: u32,
    stores: Vec<(u64, u64)>,
}

/// Aggregated per-shard verdicts for one MTX: the group-commit decision
/// needs `VerdictOk` from *every* try-commit shard (each owns a disjoint
/// page partition), while a single `VerdictBad` from any shard squashes
/// the MTX.
#[derive(Debug, Default, Clone, Copy)]
struct VerdictState {
    /// Shards that reported `VerdictOk` so far.
    oks: u16,
    /// True once any shard reported a conflict.
    bad: bool,
}

pub(crate) struct CommitUnit {
    shape: PipelineShape,
    ctrl: ControlPlane,
    trace: TraceSink,
    master: MasterMem,
    from_workers: Vec<(WorkerId, RecvPort<Msg>)>,
    /// Verdict/COA streams, one per try-commit shard.
    from_trycommit: Vec<RecvPort<Msg>>,
    coa_out: Vec<(WorkerId, SendPort<Msg>)>,
    /// COA reply queues, one per try-commit shard.
    coa_tc_out: Vec<SendPort<Msg>>,
    partial: FxHashMap<WorkerId, Assembly>,
    /// Completed store sets per (mtx, stage).
    store_sets: FxHashMap<(u64, u16), Vec<(u64, u64)>>,
    events: BTreeMap<u64, Events>,
    verdicts: BTreeMap<u64, VerdictState>,
    next_commit: MtxId,
    recovery: RecoveryFn,
    on_commit: Option<CommitHook>,
    limit: Option<u64>,
    counters: CommitCounters,
    /// Commit epoch: bumped after every mutation of committed memory
    /// (group commit, recovery re-execution). COA replies piggyback it so
    /// requesters can tag their cached copies.
    commit_epoch: u64,
    /// Per-page last-modification epochs; a page absent here has not been
    /// committed to since the pre-loop baseline (epoch 0). Never cleared:
    /// committed memory survives recovery, so do its modification times.
    page_epochs: FxHashMap<PageId, u64>,
}

pub(crate) struct CommitWiring {
    pub shape: PipelineShape,
    pub ctrl: ControlPlane,
    pub trace: TraceSink,
    pub master: MasterMem,
    pub from_workers: Vec<(WorkerId, RecvPort<Msg>)>,
    pub from_trycommit: Vec<RecvPort<Msg>>,
    pub coa_out: Vec<(WorkerId, SendPort<Msg>)>,
    pub coa_tc_out: Vec<SendPort<Msg>>,
    pub recovery: RecoveryFn,
    pub on_commit: Option<CommitHook>,
    pub limit: Option<u64>,
}

impl CommitUnit {
    pub(crate) fn new(w: CommitWiring) -> Self {
        let mut master = w.master;
        // Pre-loop sequential writes are the epoch-0 baseline: a page
        // absent from `page_epochs` reads as modified-at-0, so the dirty
        // set they left behind carries no information — discard it.
        let _ = master.take_dirty();
        CommitUnit {
            shape: w.shape,
            ctrl: w.ctrl,
            trace: w.trace,
            master,
            from_workers: w.from_workers,
            from_trycommit: w.from_trycommit,
            coa_out: w.coa_out,
            coa_tc_out: w.coa_tc_out,
            partial: FxHashMap::default(),
            store_sets: FxHashMap::default(),
            events: BTreeMap::new(),
            verdicts: BTreeMap::new(),
            next_commit: MtxId(0),
            recovery: w.recovery,
            on_commit: w.on_commit,
            limit: w.limit,
            counters: CommitCounters::default(),
            commit_epoch: 0,
            page_epochs: FxHashMap::default(),
        }
    }

    /// Bumps the commit epoch after a mutation of committed memory and
    /// stamps every page the batch touched.
    fn advance_epoch(&mut self) {
        self.commit_epoch += 1;
        for page in self.master.take_dirty() {
            self.page_epochs.insert(page, self.commit_epoch);
        }
    }

    /// The unit's thread body; returns the final committed memory and the
    /// run counters.
    pub(crate) fn run(mut self) -> (MasterMem, CommitCounters) {
        if self.limit == Some(0) {
            self.terminate(None);
            return (self.master, self.counters);
        }
        let mut backoff = Backoff::new();
        let mut epoch = self.ctrl.epoch();
        loop {
            // The commit unit is normally the only status writer, but a
            // thread that found its channel dead publishes the typed
            // `Terminating` shutdown directly — honor it instead of
            // spinning forever on queues that will never fill.
            if let Some(Interrupt::Terminate) = self.ctrl.poll(&mut epoch) {
                self.trace
                    .record(Role::Commit, None, 0, None, TraceKind::Terminated);
                break;
            }
            let mut progress = self.ingest();
            // A fabric timeout anywhere converts into a recovery round at
            // the next commit boundary — never later, or uncommitted
            // intermediate MTXs would be silently lost.
            if self.ctrl.take_fabric_fault() {
                self.counters.fault_recoveries += 1;
                match self.recover(self.next_commit, true) {
                    StepResult::Terminated => break,
                    _ => {
                        backoff.reset();
                        continue;
                    }
                }
            }
            match self.step() {
                StepResult::Progress => progress = true,
                StepResult::Idle => {}
                StepResult::Terminated => break,
            }
            if progress {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
        (self.master, self.counters)
    }

    /// Drains available input and services COA requests. Never blocks.
    fn ingest(&mut self) -> bool {
        let mut progress = false;
        // Worker streams: store frames, events, COA requests.
        for idx in 0..self.from_workers.len() {
            loop {
                let msg = match self.from_workers[idx].1.try_consume() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(_) => {
                        // The worker thread is gone: typed shutdown, not a
                        // silent break that leaves the system spinning.
                        self.ctrl.report_channel_down();
                        break;
                    }
                };
                progress = true;
                let worker = self.from_workers[idx].0;
                match msg {
                    Msg::CoaRequest { page, have } => self.serve_coa_worker(idx, page, have),
                    Msg::SubTxBegin {
                        mtx,
                        attempt,
                        stage,
                    } => {
                        let asm = self.partial.entry(worker).or_default();
                        assert!(asm.open.is_none(), "nested commit frame from {worker}");
                        asm.open = Some((mtx, stage));
                        asm.attempt = attempt;
                        asm.stores.clear();
                    }
                    Msg::Store { addr, value } => {
                        let asm = self.partial.entry(worker).or_default();
                        debug_assert!(asm.open.is_some(), "store outside frame");
                        asm.stores.push((addr, value));
                    }
                    Msg::SubTxDone {
                        mtx,
                        attempt,
                        stage,
                        exit,
                    } => {
                        let asm = self.partial.entry(worker).or_default();
                        let open = asm.open.take().expect("frame footer without header");
                        assert_eq!(open, (mtx, stage), "commit framing mismatch");
                        self.store_sets
                            .insert((mtx.0, stage.0), std::mem::take(&mut asm.stores));
                        let ev = self.events.entry(mtx.0).or_default();
                        ev.attempt = attempt;
                        if exit {
                            ev.exit = true;
                        }
                    }
                    Msg::CommitBlock {
                        mtx,
                        attempt,
                        stage,
                        exit,
                        block,
                    } => {
                        // A packed store stream: framing, write-set, and
                        // the exit decision in one message.
                        let asm = self.partial.entry(worker).or_default();
                        assert!(
                            asm.open.is_none(),
                            "packed frame inside an open commit frame from {worker}"
                        );
                        let stores: Vec<(u64, u64)> =
                            block.iter().map(|r| (r.addr.raw(), r.value)).collect();
                        self.store_sets.insert((mtx.0, stage.0), stores);
                        let ev = self.events.entry(mtx.0).or_default();
                        ev.attempt = attempt;
                        if exit {
                            ev.exit = true;
                        }
                    }
                    Msg::WorkerMisspec { mtx, attempt } => {
                        self.counters.worker_misspecs += 1;
                        let ev = self.events.entry(mtx.0).or_default();
                        ev.attempt = attempt;
                        ev.misspec = true;
                    }
                    other => panic!("unexpected message on commit plane: {other:?}"),
                }
            }
        }
        // Try-commit streams: per-shard verdicts and COA requests.
        for shard in 0..self.from_trycommit.len() {
            loop {
                let msg = match self.from_trycommit[shard].try_consume() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(_) => {
                        self.ctrl.report_channel_down();
                        break;
                    }
                };
                progress = true;
                match msg {
                    Msg::CoaRequest { page, .. } => self.serve_coa_trycommit(shard, page),
                    Msg::VerdictOk { mtx } => {
                        self.verdicts.entry(mtx.0).or_default().oks += 1;
                    }
                    Msg::VerdictBad { mtx } => {
                        let v = self.verdicts.entry(mtx.0).or_default();
                        // Count conflicts per MTX, not per shard: several
                        // shards can each detect a mismatch in the same
                        // MTX, but it is one squash (and at one shard, one
                        // `VerdictBad` per recovery round — so this count
                        // is identical across shard configurations).
                        if !v.bad {
                            self.counters.validation_conflicts += 1;
                        }
                        v.bad = true;
                    }
                    other => panic!("unexpected message from try-commit: {other:?}"),
                }
            }
        }
        progress
    }

    /// Builds the reply to a COA request: the full committed page, or a
    /// payload-free [`Msg::CoaFresh`] when the requester's cached copy
    /// (current as of epoch `have`) has not been committed to since.
    fn coa_reply(&mut self, page: u64, have: u64) -> Msg {
        let modified = self.page_epochs.get(&PageId(page)).copied().unwrap_or(0);
        if have != EPOCH_NONE && modified <= have {
            Msg::CoaFresh {
                page,
                epoch: self.commit_epoch,
            }
        } else {
            self.counters.coa_pages_served += 1;
            Msg::CoaReply {
                page,
                epoch: self.commit_epoch,
                data: Box::new(self.master.page(PageId(page))),
            }
        }
    }

    fn serve_coa_worker(&mut self, idx: usize, page: u64, have: u64) {
        let reply = self.coa_reply(page, have);
        let worker = self.from_workers[idx].0;
        let port = self
            .coa_out
            .iter_mut()
            .find(|(id, _)| *id == worker)
            .map(|(_, p)| p)
            .expect("COA reply queue");
        // Replies are batch=1 queues with ample capacity: at most one
        // outstanding request per worker, so fault-free this cannot block.
        let sent = port.produce(reply).and_then(|()| {
            // Under fault injection the flush is a bounded retry loop.
            port.flush()
        });
        self.note_send_failure(sent);
    }

    fn serve_coa_trycommit(&mut self, shard: usize, page: u64) {
        // The shards advertise no cache; always ship the full page.
        let reply = self.coa_reply(page, EPOCH_NONE);
        let port = &mut self.coa_tc_out[shard];
        let sent = port.produce(reply).and_then(|()| port.flush());
        self.note_send_failure(sent);
    }

    /// Converts a failed COA-reply send into the appropriate control-plane
    /// action: an exhausted retry budget self-requests a recovery round
    /// (consumed at this unit's next loop turn); a dead peer becomes the
    /// typed shutdown. The starved requester's own receive deadline backs
    /// this up.
    fn note_send_failure(&mut self, sent: dsmtx_fabric::Result<()>) {
        match sent {
            Ok(()) => {}
            Err(dsmtx_fabric::FabricError::Timeout) => self.ctrl.raise_fabric_fault(),
            Err(_) => self.ctrl.report_channel_down(),
        }
    }

    /// Tries to advance the commit cursor by one MTX.
    fn step(&mut self) -> StepResult {
        let m = self.next_commit;
        let ev = self.events.get(&m.0).copied().unwrap_or_default();
        let verdict = self.verdicts.get(&m.0).copied().unwrap_or_default();
        if ev.misspec || verdict.bad {
            return self.recover(m, false);
        }
        // Group-commit decision: every shard must have validated its
        // partition of the MTX.
        if (verdict.oks as usize) < self.from_trycommit.len() {
            return StepResult::Idle;
        }
        // All stage write-sets must have arrived (they were sent at the
        // same subTX ends that produced the validated streams).
        let all_here = (0..self.shape.n_stages()).all(|s| self.store_sets.contains_key(&(m.0, s)));
        if !all_here {
            return StepResult::Idle;
        }
        // Group transaction commit: apply subTX write-sets in program
        // (stage) order; the last store to an address wins.
        let writes = (0..self.shape.n_stages()).flat_map(|s| {
            self.store_sets
                .remove(&(m.0, s))
                .expect("checked above")
                .into_iter()
                .map(|(a, v)| (VAddr::from_raw(a), v))
                .collect::<Vec<_>>()
        });
        self.master
            .commit_writes_parallel(writes.collect::<Vec<_>>());
        self.advance_epoch();
        self.counters.committed += 1;
        self.counters.last_iteration = Some(m);
        self.trace.record(
            Role::Commit,
            Some(m),
            ev.attempt,
            None,
            TraceKind::Committed,
        );
        if let Some(hook) = &mut self.on_commit {
            hook(m, &self.master);
        }
        self.verdicts.remove(&m.0);
        let exit_now = self.events.remove(&m.0).is_some_and(|e| e.exit);
        if exit_now || self.limit == Some(m.0 + 1) {
            self.terminate(Some(m));
            return StepResult::Terminated;
        }
        self.next_commit = m.next();
        StepResult::Progress
    }

    /// Orchestrates the §4.3 recovery protocol around the squashed MTX.
    /// `fault` distinguishes a round answering a fabric-fault request
    /// from a data-misspeculation squash — downstream attribution treats
    /// the retries it causes as `fault_induced_retry`, not conflicts.
    fn recover(&mut self, boundary: MtxId, fault: bool) -> StepResult {
        // A typed channel-down shutdown may have raced in: publishing
        // `Recovering` over it would park this unit at a barrier a dead
        // thread can never reach. Honor the shutdown instead.
        if matches!(self.ctrl.status(), Status::Terminating { .. }) {
            return StepResult::Terminated;
        }
        let attempt = self.events.get(&boundary.0).map_or(0, |e| e.attempt);
        let kind = if fault {
            TraceKind::FaultRecoveryStart
        } else {
            TraceKind::RecoveryStart
        };
        self.trace
            .record(Role::Commit, Some(boundary), attempt, None, kind);
        self.ctrl.publish(Status::Recovering { boundary });
        let barrier = self.ctrl.barrier().clone();
        barrier.wait(); // B1: every thread is in recovery mode.

        // Discard any fault request that raced in while recovery was
        // starting: its raiser is already rendezvousing at these barriers,
        // so this round satisfies it. Without the clear the stale flag
        // would trigger a redundant second round — clearing here is what
        // makes re-entry under faults idempotent.
        self.ctrl.clear_fabric_fault();

        // Flush: everything buffered is speculative state at or after the
        // boundary (all earlier MTXs already committed in order).
        for (_, port) in &mut self.from_workers {
            port.drain();
        }
        for port in &mut self.from_trycommit {
            port.drain();
        }
        for (_, port) in &mut self.coa_out {
            port.clear();
        }
        for port in &mut self.coa_tc_out {
            port.clear();
        }
        self.partial.clear();
        self.store_sets.clear();
        self.events.clear();
        self.verdicts.clear();
        barrier.wait(); // B2: queues are clean everywhere.

        // Re-execute the squashed iteration single-threaded on committed
        // memory while the workers re-protect their heaps.
        let outcome = (self.recovery)(boundary, &mut self.master);
        self.advance_epoch();
        self.counters.recovered_iterations += 1;
        self.counters.last_iteration = Some(boundary);
        self.ctrl.record_recovery();
        if let Some(hook) = &mut self.on_commit {
            hook(boundary, &self.master);
        }
        self.trace.record(
            Role::Commit,
            Some(boundary),
            attempt,
            None,
            TraceKind::RecoveryEnd,
        );

        let done = outcome == IterOutcome::Exit || self.limit == Some(boundary.0 + 1);
        if done {
            self.ctrl.publish(Status::Terminating {
                last: Some(boundary),
            });
        } else {
            self.ctrl.publish(Status::Running);
        }
        barrier.wait(); // B3: parallel execution may recommence.
        if done {
            self.trace.record(
                Role::Commit,
                Some(boundary),
                attempt,
                None,
                TraceKind::Terminated,
            );
            StepResult::Terminated
        } else {
            self.next_commit = boundary.next();
            StepResult::Progress
        }
    }

    fn terminate(&mut self, last: Option<MtxId>) {
        self.ctrl.publish(Status::Terminating { last });
        self.trace
            .record(Role::Commit, last, 0, None, TraceKind::Terminated);
    }
}

impl std::fmt::Debug for CommitUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitUnit")
            .field("next_commit", &self.next_commit)
            .field("committed", &self.counters.committed)
            .finish_non_exhaustive()
    }
}

enum StepResult {
    Progress,
    Idle,
    Terminated,
}
