//! User programs: per-stage iteration bodies plus the sequential recovery
//! body.
//!
//! A parallelized loop hands DSMTX one closure per pipeline stage. The
//! closure is the body of that stage's subTX for a given iteration: it may
//! only touch program state through the [`crate::worker::WorkerCtx`] it
//! receives (speculative reads/writes, produces/consumes), never through
//! captured mutable Rust state — captured state would not roll back on
//! misspeculation.
//!
//! The recovery body is the *sequential* version of one whole iteration,
//! executed by the commit unit against committed memory after a rollback
//! (§4.3). It is the single-threaded ground truth the speculative stages
//! must agree with.

use std::sync::Arc;

use dsmtx_mem::MasterMem;

use crate::control::Interrupt;
use crate::ids::MtxId;
use crate::worker::WorkerCtx;

/// What an iteration decided about the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterOutcome {
    /// The loop continues past this iteration.
    Continue,
    /// This iteration is the last one (`mtx_terminate`): everything after
    /// it is squashed once this iteration commits.
    Exit,
}

/// A pipeline-stage body: executes the subTX of `mtx` at this stage.
///
/// Shared between the replicas of a parallel stage, hence `Fn + Send +
/// Sync`. Return `Err` only by propagating an [`Interrupt`] from a ctx
/// call (use `?`).
pub type StageFn =
    Arc<dyn Fn(&mut WorkerCtx, MtxId) -> Result<IterOutcome, Interrupt> + Send + Sync>;

/// Sequential re-execution of one whole iteration on committed memory.
pub type RecoveryFn = Box<dyn FnMut(MtxId, &mut MasterMem) -> IterOutcome + Send>;

/// Optional hook run by the commit unit right after an MTX commits
/// (the `commit_fun` of Table 1) — e.g. to validate or export in-order
/// results during the run.
pub type CommitHook = Box<dyn FnMut(MtxId, &MasterMem) + Send>;

/// A complete parallelized program ready to run on a
/// [`crate::system::MtxSystem`].
pub struct Program {
    /// The initial committed memory: everything the sequential pre-loop
    /// code produced. Built by the caller (the commit unit is its logical
    /// owner).
    pub master: MasterMem,
    /// One body per pipeline stage, in stage order.
    pub stages: Vec<StageFn>,
    /// Sequential re-execution used by misspeculation recovery.
    pub recovery: RecoveryFn,
    /// Optional per-commit hook.
    pub on_commit: Option<CommitHook>,
    /// If set, workers never start iterations `>= limit` and the system
    /// terminates after committing iteration `limit - 1` (a counted loop).
    /// `None` means termination is decided by a stage returning
    /// [`IterOutcome::Exit`] (an uncounted loop under control
    /// speculation).
    pub iteration_limit: Option<u64>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("stages", &self.stages.len())
            .field("iteration_limit", &self.iteration_limit)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_debug_is_nonempty() {
        let p = Program {
            master: MasterMem::new(),
            stages: vec![],
            recovery: Box::new(|_, _| IterOutcome::Continue),
            on_commit: None,
            iteration_limit: Some(4),
        };
        let s = format!("{p:?}");
        assert!(s.contains("iteration_limit"));
    }
}
