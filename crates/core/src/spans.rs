//! Builds MTX lifecycle spans ([`dsmtx_obs::MtxSpan`]) from a run's
//! trace: one span per speculative *attempt* of each MTX, stitched
//! across roles by the `(mtx, attempt)` trace context the wire frames
//! propagate, and joined with the try-commit shards' conflict records
//! for misspeculation attribution (`repro why`).
//!
//! The builder replays the (globally ordered) event stream once:
//!
//! * worker `SubTxBegin`/`ExecBegin`/`FlushBegin`/`SubTxEnd` open,
//!   refine, and close per-stage intervals;
//! * try-commit `Validated` marks the span validated (the *last* shard's
//!   verdict, under sharding);
//! * try-commit `Conflict` attaches the matching [`ConflictRecord`];
//! * commit `Committed` closes the span as committed;
//! * commit `RecoveryStart`/`FaultRecoveryStart` are round deadlines:
//!   the r-th round squashes every uncommitted attempt numbered r-1 and
//!   clamps its intervals to the squash time — collateral squashes
//!   included (which is what lets the attribution engine explain retries
//!   of innocent MTXs), late events from stale workers notwithstanding.

use std::collections::HashMap;

use dsmtx_obs::{ChromeTrace, ConflictInfo, MtxSpan, StageSpan};

use crate::trace::{Role, TraceEvent, TraceKind};
use crate::trycommit::ConflictRecord;

/// Builds the span set of one run. `conflicts` are the shards' conflict
/// records (as aggregated in `RunReport::conflict_events`), joined to
/// `Conflict` events by `(mtx, attempt, shard)`. Spans come back sorted
/// by `(mtx, attempt)`.
pub fn build_spans(events: &[TraceEvent], conflicts: &[ConflictRecord]) -> Vec<MtxSpan> {
    let mut spans: HashMap<(u64, u32), MtxSpan> = HashMap::new();
    // Per-worker currently-open stage interval.
    let mut open: HashMap<u32, (u64, u32, StageSpan)> = HashMap::new();

    fn with_span(spans: &mut HashMap<(u64, u32), MtxSpan>, mtx: u64, attempt: u32) -> &mut MtxSpan {
        spans
            .entry((mtx, attempt))
            .or_insert_with(|| MtxSpan::new(mtx, attempt))
    }

    fn push_stage(spans: &mut HashMap<(u64, u32), MtxSpan>, mtx: u64, attempt: u32, s: StageSpan) {
        with_span(spans, mtx, attempt).stages.push(s);
    }

    // Recovery rounds in stream order: (squash time, fault-induced).
    // Round r bumps the global recovery count from r-1 to r, so it is
    // the causal deadline of every attempt numbered r-1.
    let mut rounds: Vec<(u64, bool)> = Vec::new();

    for e in events {
        match e.kind {
            TraceKind::SubTxBegin => {
                let (Role::Worker(w), Some(mtx), Some(stage)) = (e.role, e.mtx, e.stage) else {
                    continue;
                };
                // An interrupted subTX (recovery unwound it) leaves its
                // interval open; close it at its own begin so nothing is
                // silently lost.
                if let Some((m, a, s)) = open.remove(&w) {
                    push_stage(&mut spans, m, a, close_stage(s));
                }
                open.insert(
                    w,
                    (
                        mtx.0,
                        e.attempt,
                        StageSpan {
                            stage: stage.0,
                            worker: w,
                            begin_us: e.at_us,
                            exec_begin_us: e.at_us,
                            flush_begin_us: e.at_us,
                            end_us: e.at_us,
                        },
                    ),
                );
                // Materialize the span at begin so even an attempt with
                // no completed stage exists for squash accounting.
                with_span(&mut spans, mtx.0, e.attempt);
            }
            TraceKind::ExecBegin => {
                if let (Role::Worker(w), Some(mtx)) = (e.role, e.mtx) {
                    if let Some((m, a, s)) = open.get_mut(&w) {
                        if *m == mtx.0 && *a == e.attempt {
                            s.exec_begin_us = e.at_us;
                            s.flush_begin_us = e.at_us;
                            s.end_us = e.at_us;
                        }
                    }
                }
            }
            TraceKind::FlushBegin => {
                if let (Role::Worker(w), Some(mtx)) = (e.role, e.mtx) {
                    if let Some((m, a, s)) = open.get_mut(&w) {
                        if *m == mtx.0 && *a == e.attempt {
                            s.flush_begin_us = e.at_us;
                            s.end_us = e.at_us;
                        }
                    }
                }
            }
            TraceKind::SubTxEnd => {
                let (Role::Worker(w), Some(mtx)) = (e.role, e.mtx) else {
                    continue;
                };
                if let Some((m, a, mut s)) = open.remove(&w) {
                    if m == mtx.0 && a == e.attempt {
                        s.end_us = e.at_us;
                        push_stage(&mut spans, m, a, s);
                    } else {
                        // Mismatched end: close what was open, drop the
                        // stray end.
                        push_stage(&mut spans, m, a, close_stage(s));
                    }
                }
            }
            TraceKind::Validated => {
                if let Some(mtx) = e.mtx {
                    let span = with_span(&mut spans, mtx.0, e.attempt);
                    // Under sharding every shard reports; the MTX is
                    // validated when the last one does.
                    span.validated_us = Some(span.validated_us.map_or(e.at_us, |t| t.max(e.at_us)));
                }
            }
            TraceKind::Conflict => {
                let Some(mtx) = e.mtx else { continue };
                let shard = match e.role {
                    Role::TryCommit(s) => Some(s),
                    _ => None,
                };
                let rec = conflicts.iter().find(|c| {
                    c.mtx == mtx.0 && c.attempt == e.attempt && shard.is_none_or(|s| c.shard == s)
                });
                let span = with_span(&mut spans, mtx.0, e.attempt);
                // Keep the earliest conflict (several shards can each
                // flag the same MTX).
                if span.conflict.is_none() {
                    span.conflict = Some(ConflictInfo {
                        page: rec.map_or(0, |c| c.page),
                        shard: rec.map(|c| c.shard).or(shard).unwrap_or(0),
                        first_writer_mtx: rec.and_then(|c| c.first_writer).map(|(m, _)| m),
                        first_writer_attempt: rec
                            .and_then(|c| c.first_writer)
                            .map_or(0, |(_, a)| a),
                        at_us: e.at_us,
                    });
                }
            }
            TraceKind::Committed => {
                if let Some(mtx) = e.mtx {
                    with_span(&mut spans, mtx.0, e.attempt).committed_us = Some(e.at_us);
                }
            }
            TraceKind::RecoveryStart | TraceKind::FaultRecoveryStart => {
                rounds.push((e.at_us, e.kind == TraceKind::FaultRecoveryStart));
            }
            TraceKind::RecoveryEnd | TraceKind::Terminated => {}
        }
    }
    // Close intervals still open at stream end (normal at termination).
    for (_, (m, a, s)) in open {
        push_stage(&mut spans, m, a, close_stage(s));
    }

    let mut out: Vec<MtxSpan> = spans.into_values().collect();
    // Squash pass. An attempt is dead the moment its deadline round
    // starts, even though recovery is asynchronous: the RecoveryStart
    // event is recorded before the barrier rendezvous, while workers
    // blocked mid-subTX (or dispatching one more stale task off the old
    // recovery count) keep emitting events with the old attempt number
    // until they reach it. Clamping every dead span to its deadline
    // keeps retry intervals causally ordered — attempt r begins only
    // after round r, which is attempt r-1's deadline.
    for span in &mut out {
        if span.committed_us.is_some() {
            continue;
        }
        let Some(&(q, fault)) = rounds.get(span.attempt as usize) else {
            continue; // still in flight at stream end
        };
        span.squashed_us = Some(q);
        span.fault_squashed = fault;
        for s in &mut span.stages {
            s.begin_us = s.begin_us.min(q);
            s.exec_begin_us = s.exec_begin_us.min(q);
            s.flush_begin_us = s.flush_begin_us.min(q);
            s.end_us = s.end_us.min(q);
        }
        span.validated_us = span.validated_us.map(|v| v.min(q));
    }
    for span in &mut out {
        span.stages.sort_by_key(|s| (s.stage, s.begin_us));
        // Cross-thread timestamp skew: each role stamps its own events,
        // and the worker records SubTxEnd only after flushing the
        // frames, so a fast shard's Validated (and the commit unit's
        // Committed) can carry a timestamp a hair earlier than the event
        // it causally follows. Reconcile to causal order.
        if let (Some(v), Some(end)) = (
            span.validated_us,
            span.stages.iter().map(|s| s.end_us).max(),
        ) {
            span.validated_us = Some(v.max(end));
        }
        if let (Some(c), Some(v)) = (span.committed_us, span.validated_us) {
            span.committed_us = Some(c.max(v));
        }
    }
    out.sort_by_key(|s| (s.mtx, s.attempt));
    out
}

/// Clamps a half-open stage interval shut at the latest phase timestamp
/// it reached (the subTX never recorded its end — recovery or
/// termination unwound it).
fn close_stage(mut s: StageSpan) -> StageSpan {
    s.end_us = s
        .end_us
        .max(s.flush_begin_us)
        .max(s.exec_begin_us)
        .max(s.begin_us);
    s
}

/// Renders spans as Chrome `trace_event` JSON with parent/child nesting:
/// per worker track, each stage interval is a parent box containing
/// `queue`/`exec`/`flush` child boxes, and each attempt's milestones
/// (validated, committed, squashed) are instants on the lifecycle track.
/// Retries are linked through the shared `mtx` arg and their `attempt`.
pub fn chrome_spans(spans: &[MtxSpan]) -> ChromeTrace {
    const PID: u64 = 1;
    const TID_LIFECYCLE: u64 = 30_000;
    let mut trace = ChromeTrace::new();
    trace.thread_name(PID, TID_LIFECYCLE, "mtx-lifecycle");

    let mut workers: Vec<u32> = spans
        .iter()
        .flat_map(|s| s.stages.iter().map(|st| st.worker))
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        trace.thread_name(PID, w as u64, &format!("worker{w}"));
        trace.thread_sort_index(PID, w as u64, w as i64);
    }

    for span in spans {
        let name = format!("mtx{}#a{}", span.mtx, span.attempt);
        let base_args = [
            ("mtx", span.mtx.to_string()),
            ("attempt", span.attempt.to_string()),
        ];
        for st in &span.stages {
            let tid = st.worker as u64;
            // Parent box: the whole stage interval. Children nest inside
            // it by time containment on the same track.
            let mut args = base_args.to_vec();
            args.push(("stage", st.stage.to_string()));
            trace.span(
                PID,
                tid,
                &name,
                "subtx",
                st.begin_us,
                st.end_us.saturating_sub(st.begin_us).max(1),
                &args,
            );
            for (phase, from, to) in [
                ("queue", st.begin_us, st.exec_begin_us),
                ("exec", st.exec_begin_us, st.flush_begin_us),
                ("flush", st.flush_begin_us, st.end_us),
            ] {
                if to > from {
                    trace.span(PID, tid, phase, "phase", from, to - from, &base_args);
                }
            }
        }
        if let Some(v) = span.validated_us {
            trace.instant(
                PID,
                TID_LIFECYCLE,
                &format!("validated {name}"),
                "validate",
                v,
                &[],
            );
        }
        if let Some(c) = span.committed_us {
            trace.instant(
                PID,
                TID_LIFECYCLE,
                &format!("committed {name}"),
                "commit",
                c,
                &[],
            );
        }
        if let Some(q) = span.squashed_us {
            let mut args = base_args.to_vec();
            if let Some(cause) = span.cause {
                args.push(("cause", cause.name().to_string()));
            }
            if let Some(cf) = span.conflict {
                args.push(("page", format!("{:#x}", cf.page)));
                args.push(("shard", cf.shard.to_string()));
            }
            trace.instant(
                PID,
                TID_LIFECYCLE,
                &format!("squashed {name}"),
                "squash",
                q,
                &args,
            );
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MtxId, StageId};
    use dsmtx_obs::{check_spans, SpanOutcome};

    fn wev(w: u32, mtx: u64, attempt: u32, stage: u16, kind: TraceKind, at_us: u64) -> TraceEvent {
        TraceEvent {
            role: Role::Worker(w),
            mtx: Some(MtxId(mtx)),
            attempt,
            stage: Some(StageId(stage)),
            kind,
            at_us,
        }
    }

    fn uev(role: Role, mtx: u64, attempt: u32, kind: TraceKind, at_us: u64) -> TraceEvent {
        TraceEvent {
            role,
            mtx: Some(MtxId(mtx)),
            attempt,
            stage: None,
            kind,
            at_us,
        }
    }

    #[test]
    fn committed_span_decomposes_phases() {
        let events = vec![
            wev(0, 0, 0, 0, TraceKind::SubTxBegin, 0),
            wev(0, 0, 0, 0, TraceKind::ExecBegin, 10),
            wev(0, 0, 0, 0, TraceKind::FlushBegin, 60),
            wev(0, 0, 0, 0, TraceKind::SubTxEnd, 70),
            uev(Role::TryCommit(0), 0, 0, TraceKind::Validated, 90),
            uev(Role::Commit, 0, 0, TraceKind::Committed, 120),
        ];
        let spans = build_spans(&events, &[]);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.outcome(), SpanOutcome::Committed);
        assert_eq!(s.queue_wait_us(), 10);
        assert_eq!(s.exec_us(), 50);
        assert_eq!(s.flush_us(), 10);
        assert_eq!(s.validation_lag_us(), Some(20));
        assert_eq!(s.commit_hold_us(), Some(30));
        check_spans(&spans).unwrap();
    }

    #[test]
    fn sharded_validation_takes_last_shard() {
        let events = vec![
            wev(0, 0, 0, 0, TraceKind::SubTxBegin, 0),
            wev(0, 0, 0, 0, TraceKind::SubTxEnd, 10),
            uev(Role::TryCommit(1), 0, 0, TraceKind::Validated, 20),
            uev(Role::TryCommit(0), 0, 0, TraceKind::Validated, 35),
            uev(Role::Commit, 0, 0, TraceKind::Committed, 40),
        ];
        let spans = build_spans(&events, &[]);
        assert_eq!(spans[0].validated_us, Some(35));
    }

    #[test]
    fn conflict_joins_record_and_recovery_squashes_collateral() {
        let conflicts = [ConflictRecord {
            mtx: 1,
            attempt: 0,
            stage: 0,
            page: 0x42,
            shard: 0,
            first_writer: Some((0, 0)),
        }];
        let events = vec![
            wev(0, 0, 0, 0, TraceKind::SubTxBegin, 0),
            wev(0, 0, 0, 0, TraceKind::SubTxEnd, 5),
            wev(1, 1, 0, 0, TraceKind::SubTxBegin, 1),
            wev(1, 1, 0, 0, TraceKind::SubTxEnd, 6),
            // MTX 2 is in flight when the conflict squashes the round.
            wev(2, 2, 0, 0, TraceKind::SubTxBegin, 2),
            uev(Role::TryCommit(0), 0, 0, TraceKind::Validated, 7),
            uev(Role::Commit, 0, 0, TraceKind::Committed, 8),
            uev(Role::TryCommit(0), 1, 0, TraceKind::Conflict, 9),
            uev(Role::Commit, 1, 0, TraceKind::RecoveryStart, 10),
            uev(Role::Commit, 1, 0, TraceKind::RecoveryEnd, 20),
            // Retry of 2 at attempt 1 commits.
            wev(2, 2, 1, 0, TraceKind::SubTxBegin, 21),
            wev(2, 2, 1, 0, TraceKind::SubTxEnd, 25),
            uev(Role::TryCommit(0), 2, 1, TraceKind::Validated, 26),
            uev(Role::Commit, 2, 1, TraceKind::Committed, 27),
        ];
        let spans = build_spans(&events, &conflicts);
        check_spans(&spans).unwrap();
        let by_key: std::collections::HashMap<(u64, u32), &MtxSpan> =
            spans.iter().map(|s| ((s.mtx, s.attempt), s)).collect();
        // Committed MTX 0 untouched by the squash.
        assert_eq!(by_key[&(0, 0)].outcome(), SpanOutcome::Committed);
        // MTX 1 aborted with its joined conflict record.
        let c = by_key[&(1, 0)].conflict.expect("conflict attached");
        assert_eq!(c.page, 0x42);
        assert_eq!(c.first_writer_mtx, Some(0));
        assert_eq!(by_key[&(1, 0)].outcome(), SpanOutcome::Aborted);
        // MTX 2 attempt 0: collateral squash, no conflict of its own.
        let collateral = by_key[&(2, 0)];
        assert_eq!(collateral.outcome(), SpanOutcome::Aborted);
        assert!(collateral.conflict.is_none());
        assert!(!collateral.fault_squashed);
        // Its retry chains on with a larger attempt and commits.
        assert_eq!(by_key[&(2, 1)].outcome(), SpanOutcome::Committed);
    }

    #[test]
    fn fault_recovery_marks_fault_squashed() {
        let events = vec![
            wev(0, 3, 0, 0, TraceKind::SubTxBegin, 0),
            uev(Role::Commit, 3, 0, TraceKind::FaultRecoveryStart, 5),
            uev(Role::Commit, 3, 0, TraceKind::RecoveryEnd, 9),
        ];
        let spans = build_spans(&events, &[]);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].fault_squashed);
        assert_eq!(spans[0].outcome(), SpanOutcome::Aborted);
    }

    #[test]
    fn chrome_spans_nest_and_render_valid_json() {
        let events = vec![
            wev(0, 0, 0, 0, TraceKind::SubTxBegin, 0),
            wev(0, 0, 0, 0, TraceKind::ExecBegin, 10),
            wev(0, 0, 0, 0, TraceKind::FlushBegin, 60),
            wev(0, 0, 0, 0, TraceKind::SubTxEnd, 70),
            uev(Role::TryCommit(0), 0, 0, TraceKind::Validated, 90),
            uev(Role::Commit, 0, 0, TraceKind::Committed, 120),
        ];
        let spans = build_spans(&events, &[]);
        let doc = chrome_spans(&spans).render();
        dsmtx_obs::json::validate(&doc).expect("valid chrome trace");
        assert!(doc.contains("mtx0#a0"));
        for phase in ["\"queue\"", "\"exec\"", "\"flush\""] {
            assert!(doc.contains(phase), "{phase} missing in {doc}");
        }
        assert!(doc.contains("committed mtx0#a0"));
    }
}
