//! System construction and execution.
//!
//! [`MtxSystem`] is `mtx_newDSMTXsystem` of Table 1: it takes a pipeline
//! configuration, wires the communication topology (workers of earlier
//! stages to the executors of later stages, every worker to every
//! try-commit shard and to the commit unit, COA reply channels back), and
//! spawns one thread per worker plus `unit_shards` try-commit threads and
//! the commit unit — the paper's `mtx_spawn`, `mtx_tryCommitUnit`, and
//! `mtx_commitUnit`, with `DSMTX_Init`/`DSMTX_Finalize` folded into
//! [`MtxSystem::run`]'s setup and teardown. With `unit_shards > 1` the
//! speculation units are address-partitioned (§3.2): each shard owns a
//! disjoint hash-partition of the page space and validates only its
//! slice of every MTX's access stream.
//!
//! Only the topology the MTX protocol needs is wired — a worker connects
//! to the workers of later stages, the units, and (for ring stages) its
//! successor replica — so the channel count never grows quadratically in
//! the total thread count (§3.1).

use std::time::Instant;

use dsmtx_fabric::{EndpointId, FaultPlan, MeshBuilder};
use dsmtx_uva::{OwnerId, RegionAllocator};

use crate::commit::{CommitUnit, CommitWiring};
use crate::config::{ConfigError, FaultTarget, PipelineShape, SystemConfig};
use crate::control::ControlPlane;
use crate::ids::WorkerId;
use crate::program::Program;
use crate::report::{RunReport, RunResult};
use crate::trace::TraceSink;
use crate::trycommit::{TryCommitUnit, TryCommitWiring};
use crate::wire::Msg;
use crate::worker::{worker_main, WorkerCtx, WorkerWiring};

/// Errors from running a program.
#[derive(Debug)]
pub enum RunError {
    /// The program's stage-body count does not match the pipeline.
    StageCountMismatch {
        /// Stages in the pipeline configuration.
        expected: u16,
        /// Stage bodies supplied by the program.
        actual: usize,
    },
    /// A runtime thread panicked (protocol violation or panicking stage
    /// body).
    ThreadPanic(&'static str),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::StageCountMismatch { expected, actual } => {
                write!(f, "pipeline has {expected} stages but program has {actual}")
            }
            RunError::ThreadPanic(who) => write!(f, "runtime thread panicked: {who}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The UVA region owner assigned to a worker's private heap.
///
/// Owner 0 is the commit unit (all state created by the sequential
/// pre-loop code); workers own the following regions.
pub fn worker_owner(worker: WorkerId) -> OwnerId {
    OwnerId(worker.0 + 1)
}

/// A configured DSMTX system, ready to run programs.
#[derive(Debug, Clone)]
pub struct MtxSystem {
    shape: PipelineShape,
    tracing: bool,
    trace_capacity: usize,
}

impl MtxSystem {
    /// Validates the configuration and builds a system.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn new(config: &SystemConfig) -> Result<Self, ConfigError> {
        Ok(MtxSystem {
            shape: config.build()?,
            tracing: false,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
        })
    }

    /// Enables event tracing for subsequent runs (Figure-3 style execution
    /// model inspection).
    pub fn trace(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Caps the trace buffer at `capacity` events for subsequent traced
    /// runs; events past the cap are counted in
    /// `RunReport::trace_dropped` instead of stored.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// The validated pipeline shape.
    pub fn shape(&self) -> &PipelineShape {
        &self.shape
    }

    /// Runs one parallelized loop to completion (commit of the final
    /// iteration), returning the committed memory and a report.
    ///
    /// # Errors
    ///
    /// [`RunError::StageCountMismatch`] if the program does not fit the
    /// pipeline; [`RunError::ThreadPanic`] if a stage body or the runtime
    /// itself panicked.
    pub fn run(&self, program: Program) -> Result<RunResult, RunError> {
        let shape = &self.shape;
        if program.stages.len() != shape.n_stages() as usize {
            return Err(RunError::StageCountMismatch {
                expected: shape.n_stages(),
                actual: program.stages.len(),
            });
        }
        let n_workers = shape.n_workers() as usize;
        let n_shards = shape.unit_shards();
        let trace = if self.tracing {
            TraceSink::with_capacity(self.trace_capacity)
        } else {
            TraceSink::disabled()
        };
        let ctrl = ControlPlane::new(n_workers + n_shards + 1);

        // ---- topology -------------------------------------------------
        let mut builder = MeshBuilder::new();
        let worker_eps: Vec<EndpointId> = (0..n_workers)
            .map(|w| builder.endpoint(format!("worker{w}")))
            .collect();
        // One endpoint per try-commit shard. The single-shard name stays
        // "try-commit" so endpoint/link declaration order — and with it
        // every seeded fault schedule — is identical to the unsharded
        // runtime.
        let tc_eps: Vec<EndpointId> = (0..n_shards)
            .map(|s| {
                if n_shards == 1 {
                    builder.endpoint("try-commit")
                } else {
                    builder.endpoint(format!("try-commit{s}"))
                }
            })
            .collect();
        let cu_ep = builder.endpoint("commit");

        // Fault injection: derive every faulted link's decision stream
        // from one plan, selected by the link's *source* endpoint. The
        // schedule is then a pure function of (seed, wiring order) — the
        // same seed replays the same faults.
        let fault_target = shape.fault().map(|fc| {
            builder.fault_plan(FaultPlan::new(fc.seed, fc.rates));
            builder.retry_policy(fc.retry);
            fc.target
        });
        let hits =
            |t: FaultTarget| fault_target == Some(FaultTarget::All) || fault_target == Some(t);
        let worker_links = hits(FaultTarget::WorkerLinks);
        let tc_links = hits(FaultTarget::TryCommitLinks);
        let cu_links = hits(FaultTarget::CommitLinks);

        let batch = shape.batch();
        let cap = shape.capacity();
        let link = |b: &mut MeshBuilder,
                    from: EndpointId,
                    to: EndpointId,
                    batch: usize,
                    cap: usize,
                    faulted: bool| {
            if faulted {
                b.connect_faulted(from, to, batch, cap).map(|_| ())
            } else {
                b.connect(from, to, batch, cap).map(|_| ())
            }
        };
        for a in 0..n_workers {
            let sa = shape.stage_of(WorkerId(a as u16));
            for b in 0..n_workers {
                let sb = shape.stage_of(WorkerId(b as u16));
                if sa < sb {
                    link(
                        &mut builder,
                        worker_eps[a],
                        worker_eps[b],
                        batch,
                        cap,
                        worker_links,
                    )
                    .expect("data link");
                }
            }
            if let Some(next) = shape.ring_next(WorkerId(a as u16)) {
                link(
                    &mut builder,
                    worker_eps[a],
                    worker_eps[usize::from(next.0)],
                    batch,
                    cap,
                    worker_links,
                )
                .expect("ring link");
            }
        }
        for &ep in &worker_eps {
            for &tc in &tc_eps {
                link(&mut builder, ep, tc, batch, cap, worker_links).expect("validation link");
            }
            link(&mut builder, ep, cu_ep, batch, cap, worker_links).expect("commit link");
            link(&mut builder, cu_ep, ep, 1, 8, cu_links).expect("coa reply link");
        }
        for &tc in &tc_eps {
            link(&mut builder, tc, cu_ep, batch, cap, tc_links).expect("verdict link");
            link(&mut builder, cu_ep, tc, 1, 8, cu_links).expect("coa reply link");
        }

        let mut mesh = builder.build::<Msg>();

        // ---- port bundles ---------------------------------------------
        // Workers were declared first, so their endpoint ids are dense in
        // 0..n_workers; shard index = position in `tc_eps`.
        let is_worker = |ep: EndpointId| ep.0 < n_workers;
        let as_worker = |ep: EndpointId| WorkerId(ep.0 as u16);
        let shard_of_ep = |ep: EndpointId| tc_eps.iter().position(|&t| t == ep);

        let mut worker_wirings = Vec::with_capacity(n_workers);
        for (w, &ep) in worker_eps.iter().enumerate() {
            let ports = mesh.take_ports(ep).expect("worker ports");
            let mut out = Vec::new();
            let mut inn = Vec::new();
            let mut val_out: Vec<Option<_>> = (0..n_shards).map(|_| None).collect();
            let mut cu_out = None;
            let mut coa_in = None;
            for (dst, port) in ports.sends {
                if let Some(s) = shard_of_ep(dst) {
                    val_out[s] = Some(port);
                } else if dst == cu_ep {
                    cu_out = Some(port);
                } else {
                    out.push((as_worker(dst), port));
                }
            }
            for (src, port) in ports.recvs {
                if src == cu_ep {
                    coa_in = Some(port);
                } else {
                    inn.push((as_worker(src), port));
                }
            }
            let worker = WorkerId(w as u16);
            worker_wirings.push(WorkerWiring {
                worker,
                shape: shape.clone(),
                ctrl: ctrl.clone(),
                trace: trace.clone(),
                heap: RegionAllocator::new(worker_owner(worker)),
                out,
                inn,
                val_out: val_out
                    .into_iter()
                    .map(|p| p.expect("validation port"))
                    .collect(),
                cu_out: cu_out.expect("commit port"),
                coa_in: coa_in.expect("coa reply port"),
            });
        }

        let tc_wirings: Vec<TryCommitWiring> = tc_eps
            .iter()
            .enumerate()
            .map(|(shard, &tc)| {
                let ports = mesh.take_ports(tc).expect("try-commit ports");
                let mut val_in = Vec::new();
                let mut coa_in = None;
                for (src, port) in ports.recvs {
                    if src == cu_ep {
                        coa_in = Some(port);
                    } else {
                        val_in.push((as_worker(src), port));
                    }
                }
                let mut to_commit = None;
                for (dst, port) in ports.sends {
                    debug_assert_eq!(dst, cu_ep);
                    to_commit = Some(port);
                }
                TryCommitWiring {
                    shape: shape.clone(),
                    ctrl: ctrl.clone(),
                    trace: trace.clone(),
                    shard: shard as u16,
                    val_in,
                    to_commit: to_commit.expect("verdict port"),
                    coa_in: coa_in.expect("coa reply port"),
                }
            })
            .collect();

        let cu_wiring = {
            let ports = mesh.take_ports(cu_ep).expect("commit ports");
            let mut from_workers = Vec::new();
            let mut from_trycommit: Vec<Option<_>> = (0..n_shards).map(|_| None).collect();
            for (src, port) in ports.recvs {
                if let Some(s) = shard_of_ep(src) {
                    from_trycommit[s] = Some(port);
                } else {
                    from_workers.push((as_worker(src), port));
                }
            }
            let mut coa_out = Vec::new();
            let mut coa_tc_out: Vec<Option<_>> = (0..n_shards).map(|_| None).collect();
            for (dst, port) in ports.sends {
                if let Some(s) = shard_of_ep(dst) {
                    coa_tc_out[s] = Some(port);
                } else if is_worker(dst) {
                    coa_out.push((as_worker(dst), port));
                }
            }
            CommitWiring {
                shape: shape.clone(),
                ctrl: ctrl.clone(),
                trace: trace.clone(),
                master: program.master,
                from_workers,
                from_trycommit: from_trycommit
                    .into_iter()
                    .map(|p| p.expect("verdict port"))
                    .collect(),
                coa_out,
                coa_tc_out: coa_tc_out
                    .into_iter()
                    .map(|p| p.expect("coa reply port"))
                    .collect(),
                recovery: program.recovery,
                on_commit: program.on_commit,
                limit: program.iteration_limit,
            }
        };

        // ---- execution ------------------------------------------------
        let start = Instant::now();
        let stages = program.stages;
        let limit = program.iteration_limit;
        let outcome = std::thread::scope(|scope| {
            let mut worker_handles = Vec::with_capacity(n_workers);
            for wiring in worker_wirings {
                let stage = shape.stage_of(wiring.worker);
                let stage_fn = stages[stage.0 as usize].clone();
                worker_handles.push(scope.spawn(move || {
                    let ctx = WorkerCtx::new(wiring);
                    worker_main(ctx, stage_fn, limit)
                }));
            }
            let tc_handles: Vec<_> = tc_wirings
                .into_iter()
                .map(|w| scope.spawn(move || TryCommitUnit::new(w).run()))
                .collect();
            let cu_handle = scope.spawn(move || CommitUnit::new(cu_wiring).run());

            let commit_result = cu_handle.join();
            let tc_results: Vec<_> = tc_handles.into_iter().map(|h| h.join()).collect();
            let worker_results: Vec<_> = worker_handles.into_iter().map(|h| h.join()).collect();
            (commit_result, tc_results, worker_results)
        });
        let elapsed = start.elapsed();

        let (commit_result, tc_results, worker_results) = outcome;
        let (master, counters) = commit_result.map_err(|_| RunError::ThreadPanic("commit"))?;
        let mut shard_stats = Vec::with_capacity(n_shards);
        let mut conflict_events = Vec::new();
        for r in tc_results {
            let c = r.map_err(|_| RunError::ThreadPanic("try-commit"))?;
            conflict_events.extend(c.conflict_events);
            shard_stats.push(crate::report::ShardStats {
                validated: c.validated,
                conflicts: c.conflicts,
                conflict_pages: c.conflict_pages,
                coa_fetches: c.coa_fetches,
                replay_lag: c.replay_lag,
                verdict_latency: c.verdict_latency,
                busy_ppm: c.busy_ppm,
            });
        }
        // Deterministic order regardless of shard join order.
        conflict_events.sort_by_key(|e| (e.mtx, e.attempt, e.shard, e.page));
        let mut valplane = crate::report::ValPlaneStats::default();
        for r in worker_results {
            let ctx = r.map_err(|_| RunError::ThreadPanic("worker"))?;
            valplane.merge(&ctx.valplane());
        }

        let report = RunReport {
            committed: counters.committed,
            recoveries: ctrl.recoveries(),
            recovered_iterations: counters.recovered_iterations,
            last_iteration: counters.last_iteration,
            coa_pages_served: counters.coa_pages_served,
            validation_conflicts: counters.validation_conflicts,
            worker_misspecs: counters.worker_misspecs,
            fabric_timeouts: ctrl.fabric_faults(),
            fault_recoveries: counters.fault_recoveries,
            channel_downs: ctrl.channel_downs(),
            shard_stats,
            conflict_events,
            valplane,
            stats: mesh.stats(),
            elapsed,
            trace: trace.events(),
            trace_dropped: trace.dropped_events(),
        };
        Ok(RunResult { master, report })
    }
}
