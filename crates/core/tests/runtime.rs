//! End-to-end tests of the MTX runtime: pipelines, speculation,
//! misspeculation recovery, TLS rings, termination modes.

use std::sync::Arc;

use dsmtx::{
    IterOutcome, MtxId, MtxSystem, Program, StageId, StageKind, SystemConfig, TraceKind, WorkerCtx,
};
use dsmtx_mem::MasterMem;
use dsmtx_uva::{OwnerId, RegionAllocator};

fn heap0() -> RegionAllocator {
    RegionAllocator::new(OwnerId(0))
}

fn noop_recovery() -> dsmtx::RecoveryFn {
    Box::new(|_, _| IterOutcome::Continue)
}

/// Spec-DOALL: independent iterations, no communication, counted loop.
#[test]
fn spec_doall_independent_iterations() {
    const N: u64 = 24;
    let mut heap = heap0();
    let input = heap.alloc_words(N).unwrap();
    let output = heap.alloc_words(N).unwrap();
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), 3 * i + 1);
    }

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 4 });
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.write_no_forward(output.add_words(mtx.0), x * x)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    for i in 0..N {
        let x = 3 * i + 1;
        assert_eq!(result.master.read(output.add_words(i)), x * x, "slot {i}");
    }
    assert_eq!(result.report.committed, N);
    assert_eq!(result.report.recoveries, 0);
}

/// A three-stage Spec-DSWP pipeline [S, P(2), S] with produce/consume and
/// uncommitted value forwarding, checked against a sequential oracle.
#[test]
fn three_stage_pipeline_matches_sequential() {
    const N: u64 = 16;
    let mut heap = heap0();
    let input = heap.alloc_words(N).unwrap();
    let checksum = heap.alloc_words(1).unwrap();
    let staged = heap.alloc_words(N).unwrap(); // written stage 0, read stage 1 via forwarding
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), i + 7);
    }

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    // Stage 0: read input, stash doubled value in memory (forwarded) and
    // produce the index.
    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.write(staged.add_words(mtx.0), 2 * x)?;
        ctx.produce(mtx.0);
        Ok(IterOutcome::Continue)
    });
    // Stage 1 (parallel): read the forwarded value, square it, produce it.
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let idx = ctx.consume();
        let doubled = ctx.read(staged.add_words(idx))?;
        ctx.produce(doubled * doubled);
        Ok(IterOutcome::Continue)
    });
    // Stage 2: fold into a running checksum.
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(checksum)?;
        ctx.write(checksum, acc.wrapping_mul(31).wrapping_add(v))?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![s0, s1, s2],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    // Sequential oracle.
    let mut expect = 0u64;
    for i in 0..N {
        let x = i + 7;
        let sq = (2 * x) * (2 * x);
        expect = expect.wrapping_mul(31).wrapping_add(sq);
    }
    assert_eq!(result.master.read(checksum), expect);
    assert_eq!(result.report.committed, N);
    assert_eq!(result.report.recoveries, 0);
}

/// A loop whose every iteration truly depends on the previous one, but
/// parallelized as if independent: value validation must catch the
/// dependence, recovery must re-execute, and the final result must still
/// be exact (progress through repeated rollback).
#[test]
fn constant_conflicts_still_converge() {
    const N: u64 = 10;
    let mut heap = heap0();
    let counter = heap.alloc_words(1).unwrap();
    let master = MasterMem::new();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let c = ctx.read(counter)?;
        ctx.write_no_forward(counter, c + 1)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |_, master| {
                let c = master.read(counter);
                master.write(counter, c + 1);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    assert_eq!(result.master.read(counter), N, "count must be exact");
    assert!(
        result.report.recoveries > 0,
        "the dependence must have manifested at least once"
    );
    assert_eq!(result.report.total_iterations(), N);
}

/// Explicit `mtx_misspec` (failed control speculation) for one iteration.
#[test]
fn worker_misspec_triggers_recovery() {
    const N: u64 = 12;
    const BAD: u64 = 5;
    let mut heap = heap0();
    let out = heap.alloc_words(N).unwrap();
    let master = MasterMem::new();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 });
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == BAD {
            // Simulated rare path that speculation assumed untaken.
            return ctx.misspec();
        }
        ctx.write_no_forward(out.add_words(mtx.0), mtx.0 + 100)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, master| {
                // Sequential re-execution handles the rare path exactly.
                master.write(out.add_words(mtx.0), mtx.0 + 100);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    for i in 0..N {
        assert_eq!(result.master.read(out.add_words(i)), i + 100, "slot {i}");
    }
    assert_eq!(result.report.recoveries, 1);
    assert_eq!(result.report.recovered_iterations, 1);
    assert_eq!(result.report.total_iterations(), N);
}

/// Uncounted loop: a sequential first stage discovers the exit condition
/// in the data (linked-list style traversal bound in memory).
#[test]
fn exit_outcome_terminates_uncounted_loop() {
    let mut heap = heap0();
    let len_cell = heap.alloc_words(1).unwrap();
    let sum = heap.alloc_words(1).unwrap();
    let mut master = MasterMem::new();
    master.write(len_cell, 7); // the loop should run 7 iterations

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let n = ctx.read(len_cell)?;
        ctx.produce(mtx.0 + 1);
        Ok(if mtx.0 + 1 >= n {
            IterOutcome::Exit
        } else {
            IterOutcome::Continue
        })
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let v = ctx.consume();
        let acc = ctx.read(sum)?;
        ctx.write(sum, acc + v)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![s0, s1],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: None,
        })
        .unwrap();

    assert_eq!(result.master.read(sum), (1..=7).sum::<u64>());
    assert_eq!(result.report.committed, 7);
    assert_eq!(result.report.last_iteration, Some(MtxId(6)));
}

/// TLS/DOACROSS ring: a synchronized cross-iteration dependence forwarded
/// replica-to-replica with `sync_produce`/`sync_take`.
#[test]
fn tls_ring_synchronized_dependence() {
    const N: u64 = 18;
    let mut heap = heap0();
    let input = heap.alloc_words(N).unwrap();
    let total = heap.alloc_words(1).unwrap();
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), i * i + 1);
    }

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .ring(StageId(0));
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        // Receive the running sum from the previous iteration (0 at the
        // start; re-derived from committed memory after a recovery).
        let sums = ctx.sync_take();
        let acc = match sums.first() {
            Some(&v) => v,
            None => ctx.read(total)?, // iteration 0 or post-recovery
        };
        let x = ctx.read_private(input.add_words(mtx.0))?; // read-only input
        let new_acc = acc + x;
        // Persist so the value is committed (and recoverable), and forward
        // to the next iteration on the ring.
        ctx.write_no_forward(total, new_acc)?;
        ctx.sync_produce(new_acc);
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![body],
            recovery: Box::new(move |mtx, master| {
                let acc = master.read(total);
                let x = master.read(input.add_words(mtx.0));
                master.write(total, acc + x);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let expect: u64 = (0..N).map(|i| i * i + 1).sum();
    assert_eq!(result.master.read(total), expect);
    assert_eq!(result.report.recoveries, 0, "synchronized: no misspec");
}

/// Zero-iteration loop: the system must terminate immediately.
#[test]
fn zero_iteration_loop() {
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap();
    let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(0),
        })
        .unwrap();
    assert_eq!(result.report.committed, 0);
    assert_eq!(result.report.last_iteration, None);
}

/// Single-iteration loop.
#[test]
fn single_iteration_loop() {
    let mut heap = heap0();
    let cell = heap.alloc_words(1).unwrap();
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
        ctx.write(cell, 99)?;
        Ok(IterOutcome::Continue)
    });
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(1),
        })
        .unwrap();
    assert_eq!(result.master.read(cell), 99);
    assert_eq!(result.report.committed, 1);
}

/// The on-commit hook observes MTXs strictly in iteration order.
#[test]
fn commit_hook_sees_iteration_order() {
    const N: u64 = 20;
    let seen = Arc::new(parking_lot_stub::Mutex::new(Vec::new()));
    let seen2 = seen.clone();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 4 });
    let system = MtxSystem::new(&cfg).unwrap();
    let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: Some(Box::new(move |mtx, _| {
                seen2.lock().push(mtx.0);
            })),
            iteration_limit: Some(N),
        })
        .unwrap();
    assert_eq!(result.report.committed, N);
    let order = seen.lock().clone();
    assert_eq!(order, (0..N).collect::<Vec<_>>());
}

/// Trace invariant: commits appear in iteration order and every iteration
/// has subTX begin/end events.
#[test]
fn trace_records_commit_order() {
    const N: u64 = 8;
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap().trace(true);
    let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let commits: Vec<u64> = result
        .report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::Committed)
        .map(|e| e.mtx.unwrap().0)
        .collect();
    assert_eq!(commits, (0..N).collect::<Vec<_>>());

    let begins = result
        .report
        .trace
        .iter()
        .filter(|e| e.kind == TraceKind::SubTxBegin)
        .count() as u64;
    assert!(begins >= N, "every iteration has at least one subTX begin");
}

/// Worker-private scratch (memory versioning) never reaches committed
/// memory.
#[test]
fn private_writes_stay_private() {
    const N: u64 = 8;
    let mut heap = heap0();
    let out = heap.alloc_words(N).unwrap();
    let scratch_probe = heap.alloc_words(1).unwrap();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        // Private scratch in the worker's own UVA region.
        let scratch = ctx.heap().alloc_words(4).unwrap();
        ctx.write_private(scratch, mtx.0 * 10)?;
        let v = ctx.read_private(scratch)?;
        ctx.write_no_forward(out.add_words(mtx.0), v + 1)?;
        // Also write privately to a shared location: must NOT commit.
        ctx.write_private(scratch_probe, 0xDEAD)?;
        ctx.heap().free(scratch).unwrap();
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    for i in 0..N {
        assert_eq!(result.master.read(out.add_words(i)), i * 10 + 1);
    }
    assert_eq!(
        result.master.read(scratch_probe),
        0,
        "private writes must never commit"
    );
}

/// Program/pipeline mismatch is rejected up front.
#[test]
fn stage_count_mismatch_rejected() {
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();
    let body: dsmtx::StageFn = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let err = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(1),
        })
        .unwrap_err();
    assert!(matches!(err, dsmtx::RunError::StageCountMismatch { .. }));
}

/// Misspeculation inside a multi-stage pipeline: later stages of squashed
/// iterations must unwind cleanly and the pipeline must refill.
#[test]
fn recovery_in_pipeline_refills() {
    const N: u64 = 14;
    let mut heap = heap0();
    let dep = heap.alloc_words(1).unwrap();
    let out = heap.alloc_words(N).unwrap();
    let mut master = MasterMem::new();
    master.write(dep, 1);

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap();

    // Stage 0 produces the iteration id. Stage 1 reads a shared cell that
    // iteration 6 also writes — a rare cross-iteration dependence.
    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        ctx.produce(mtx.0);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _mtx: MtxId| {
        let i = ctx.consume();
        let d = ctx.read(dep)?;
        if i == 6 {
            ctx.write_no_forward(dep, d + 1)?;
        }
        ctx.write_no_forward(out.add_words(i), d * 1000 + i)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![s0, s1],
            recovery: Box::new(move |mtx, master| {
                let d = master.read(dep);
                if mtx.0 == 6 {
                    master.write(dep, d + 1);
                }
                master.write(out.add_words(mtx.0), d * 1000 + mtx.0);
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    // Sequential oracle.
    let mut d = 1u64;
    for i in 0..N {
        let before = d;
        if i == 6 {
            d += 1;
        }
        assert_eq!(
            result.master.read(out.add_words(i)),
            before * 1000 + i,
            "slot {i}"
        );
    }
    assert_eq!(result.master.read(dep), 2);
    assert_eq!(result.report.total_iterations(), N);
}

/// Exit discovered by a *later* pipeline stage (control speculation across
/// stages).
#[test]
fn exit_from_second_stage() {
    let mut heap = heap0();
    let seen = heap.alloc_words(1).unwrap();
    let master = MasterMem::new();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        ctx.produce(mtx.0);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _| {
        let i = ctx.consume();
        let acc = ctx.read(seen)?;
        ctx.write(seen, acc + 1)?;
        Ok(if i == 4 {
            IterOutcome::Exit
        } else {
            IterOutcome::Continue
        })
    });

    let result = system
        .run(Program {
            master,
            stages: vec![s0, s1],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: None,
        })
        .unwrap();
    assert_eq!(result.report.committed, 5);
    assert_eq!(result.master.read(seen), 5);
}

/// COA transfers whole pages: after touching one word the rest of the page
/// is local (fault count does not grow per word).
#[test]
fn coa_page_granularity_prefetches() {
    const N: u64 = 64; // all within one page (512 words)
    let mut heap = heap0();
    let arr = heap.alloc_words(N).unwrap();
    let out = heap.alloc_words(1).unwrap();
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(arr.add_words(i), i);
    }

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(arr.add_words(mtx.0))?;
        let acc = ctx.read(out)?;
        ctx.write(out, acc + x)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master,
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    assert_eq!(result.master.read(out), (0..N).sum::<u64>());
    // arr spans one or two pages, out one more: a handful of pages, far
    // fewer than N faults.
    assert!(
        result.report.coa_pages_served <= 8,
        "COA must be page-granular: served {}",
        result.report.coa_pages_served
    );
}

/// Minimal stand-in for a mutex (avoid adding a dev-dependency to core).
mod parking_lot_stub {
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap()
        }
    }
}

/// `mtx_writeTo`: a store forwarded to one specific later stage only.
#[test]
fn targeted_forwarding_reaches_one_stage() {
    const N: u64 = 10;
    let mut heap = heap0();
    let staged = heap.alloc_words(N).unwrap();
    let out = heap.alloc_words(N).unwrap();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    // Stage 0 targets stage 2 directly (stage 1 never reads it).
    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        ctx.write_to_stage(StageId(2), staged.add_words(mtx.0), mtx.0 * 11)?;
        ctx.produce_to(StageId(1), mtx.0);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _| {
        let i = ctx.consume_from(StageId(0));
        ctx.produce_to(StageId(2), i + 1000);
        Ok(IterOutcome::Continue)
    });
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let tagged = ctx.consume_from(StageId(1));
        let staged_v = ctx.read(staged.add_words(mtx.0))?;
        ctx.write_no_forward(out.add_words(mtx.0), staged_v + tagged)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![s0, s1, s2],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    for i in 0..N {
        assert_eq!(result.master.read(out.add_words(i)), i * 11 + i + 1000);
    }
    assert_eq!(result.report.recoveries, 0, "no spurious conflicts");
}

/// Two parallel stages in one pipeline: iteration-i frames route between
/// the matching replicas of each stage.
#[test]
fn two_parallel_stages_route_correctly() {
    const N: u64 = 18;
    let mut heap = heap0();
    let out = heap.alloc_words(N).unwrap();

    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 })
        .stage(StageKind::Parallel { replicas: 3 })
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg).unwrap();

    let s0 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        ctx.produce_to(StageId(1), mtx.0 * 2);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(move |ctx: &mut WorkerCtx, _| {
        let v = ctx.consume_from(StageId(0));
        ctx.produce_to(StageId(2), v + 1);
        Ok(IterOutcome::Continue)
    });
    let s2 = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let v = ctx.consume_from(StageId(1));
        ctx.write_no_forward(out.add_words(mtx.0), v)?;
        Ok(IterOutcome::Continue)
    });

    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![s0, s1, s2],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    for i in 0..N {
        assert_eq!(result.master.read(out.add_words(i)), i * 2 + 1, "slot {i}");
    }
}

/// Runtime invariants hold on a clean traced pipeline run: commit order
/// equals iteration order, every Committed MTX was Validated first, and
/// every SubTxBegin has a matching SubTxEnd.
#[test]
fn trace_analysis_invariants_hold_on_clean_run() {
    const N: u64 = 16;
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Sequential)
        .stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap().trace(true);
    let s0 = Arc::new(|ctx: &mut WorkerCtx, mtx: MtxId| {
        ctx.produce(mtx.0);
        Ok(IterOutcome::Continue)
    });
    let s1 = Arc::new(|ctx: &mut WorkerCtx, _: MtxId| {
        let _ = ctx.consume();
        Ok(IterOutcome::Continue)
    });
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![s0, s1],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();

    let analysis = result.report.analysis();
    analysis
        .check_invariants()
        .expect("clean run has no violations");
    // Commit order is exactly iteration order.
    assert_eq!(
        analysis.commit_order(),
        (0..N).map(MtxId).collect::<Vec<_>>().as_slice()
    );
    // The latency pipeline saw every MTX.
    assert_eq!(analysis.total_latency().count(), N);
    assert_eq!(analysis.validation_wait().count(), N);
    assert_eq!(analysis.commit_wait().count(), N);
    // Both stages ran and produced exec histograms.
    assert_eq!(analysis.stages().len(), 2);
    assert_eq!(result.report.trace_dropped, 0);
}

/// The invariants still hold through misspeculation recovery (recovery
/// legitimately interrupts subTXs and skips the boundary iteration, which
/// the analysis must not flag).
#[test]
fn trace_analysis_invariants_hold_through_recovery() {
    const N: u64 = 12;
    let mut heap = heap0();
    let cell = heap.alloc_words(1).unwrap();
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let v = ctx.read(cell)?;
        if mtx.0 == 4 {
            ctx.write_no_forward(cell, v + 1)?;
        }
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .trace(true)
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                if mtx.0 == 4 {
                    let v = m.read(cell);
                    m.write(cell, v + 1);
                }
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert!(result.report.recoveries >= 1, "dependence must manifest");
    let analysis = result.report.analysis();
    analysis
        .check_invariants()
        .expect("recovery is not an invariant violation");
    assert_eq!(analysis.recoveries(), result.report.recoveries);
    // Committed MTX ids still strictly increase.
    let order = analysis.commit_order();
    assert!(order.windows(2).all(|w| w[0].0 < w[1].0));
}

/// A tiny trace capacity drops events past the cap and reports the count,
/// instead of growing without bound.
#[test]
fn trace_capacity_caps_and_counts_drops() {
    const N: u64 = 16;
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let system = MtxSystem::new(&cfg).unwrap().trace(true).trace_capacity(8);
    let body = Arc::new(|_: &mut WorkerCtx, _: MtxId| Ok(IterOutcome::Continue));
    let result = system
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: noop_recovery(),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert_eq!(result.report.trace.len(), 8);
    assert!(result.report.trace_dropped > 0, "the rest was counted");
}

/// Misspeculation causes are attributed: explicit `mtx_misspec` vs
/// validation-detected conflicts.
#[test]
fn misspec_causes_are_attributed() {
    const N: u64 = 10;
    let mut heap = heap0();
    let cell = heap.alloc_words(1).unwrap();

    // Explicit misspec at iteration 2; a genuine dependence manifests
    // around iteration 5 (read-modify-write of a shared cell).
    let body = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        if mtx.0 == 2 {
            return ctx.misspec();
        }
        let v = ctx.read(cell)?;
        if mtx.0 == 5 {
            ctx.write_no_forward(cell, v + 1)?;
        }
        Ok(IterOutcome::Continue)
    });
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 2 });
    let result = MtxSystem::new(&cfg)
        .unwrap()
        .run(Program {
            master: MasterMem::new(),
            stages: vec![body],
            recovery: Box::new(move |mtx, m| {
                if mtx.0 == 5 {
                    let v = m.read(cell);
                    m.write(cell, v + 1);
                }
                IterOutcome::Continue
            }),
            on_commit: None,
            iteration_limit: Some(N),
        })
        .unwrap();
    assert!(result.report.worker_misspecs >= 1, "explicit misspec seen");
    assert_eq!(result.master.read(cell), 1);
    assert_eq!(result.report.total_iterations(), N);
    assert!(
        result.report.recoveries >= 1,
        "at least the explicit one recovered"
    );
}
