/root/repo/target/release/libdsmtx_integration_tests.rlib: /root/repo/tests/src/lib.rs
