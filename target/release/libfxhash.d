/root/repo/target/release/libfxhash.rlib: /root/repo/vendor/fxhash/src/lib.rs
