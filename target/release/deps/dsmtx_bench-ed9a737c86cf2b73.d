/root/repo/target/release/deps/dsmtx_bench-ed9a737c86cf2b73.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/release/deps/dsmtx_bench-ed9a737c86cf2b73: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
crates/bench/src/valplane.rs:
