/root/repo/target/release/deps/cluster_model-c721494a57995c72.d: examples/cluster_model.rs

/root/repo/target/release/deps/cluster_model-c721494a57995c72: examples/cluster_model.rs

examples/cluster_model.rs:
