/root/repo/target/release/deps/invariants-324facd6a3078d29.d: tests/tests/invariants.rs

/root/repo/target/release/deps/invariants-324facd6a3078d29: tests/tests/invariants.rs

tests/tests/invariants.rs:
