/root/repo/target/release/deps/dsmtx_fabric-6b19c797bd79dc00.d: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdsmtx_fabric-6b19c797bd79dc00.rlib: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdsmtx_fabric-6b19c797bd79dc00.rmeta: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/barrier.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/mesh.rs:
crates/fabric/src/queue.rs:
crates/fabric/src/stats.rs:
