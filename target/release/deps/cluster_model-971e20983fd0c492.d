/root/repo/target/release/deps/cluster_model-971e20983fd0c492.d: examples/cluster_model.rs

/root/repo/target/release/deps/cluster_model-971e20983fd0c492: examples/cluster_model.rs

examples/cluster_model.rs:
