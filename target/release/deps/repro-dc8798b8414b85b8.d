/root/repo/target/release/deps/repro-dc8798b8414b85b8.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-dc8798b8414b85b8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
