/root/repo/target/release/deps/sim_props-698d154d09913a65.d: tests/tests/sim_props.rs

/root/repo/target/release/deps/sim_props-698d154d09913a65: tests/tests/sim_props.rs

tests/tests/sim_props.rs:
