/root/repo/target/release/deps/dsmtx_bench-5cf497323c6a6e31.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/release/deps/libdsmtx_bench-5cf497323c6a6e31.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/release/deps/libdsmtx_bench-5cf497323c6a6e31.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
crates/bench/src/valplane.rs:
