/root/repo/target/release/deps/dsmtx_fabric-a3f4e93e8d4b90c6.d: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdsmtx_fabric-a3f4e93e8d4b90c6.rlib: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/libdsmtx_fabric-a3f4e93e8d4b90c6.rmeta: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/barrier.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/mesh.rs:
crates/fabric/src/queue.rs:
crates/fabric/src/stats.rs:
