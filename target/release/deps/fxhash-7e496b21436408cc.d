/root/repo/target/release/deps/fxhash-7e496b21436408cc.d: vendor/fxhash/src/lib.rs

/root/repo/target/release/deps/libfxhash-7e496b21436408cc.rlib: vendor/fxhash/src/lib.rs

/root/repo/target/release/deps/libfxhash-7e496b21436408cc.rmeta: vendor/fxhash/src/lib.rs

vendor/fxhash/src/lib.rs:
