/root/repo/target/release/deps/dsmtx_integration_tests-a05058987927f85a.d: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-a05058987927f85a.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-a05058987927f85a.rmeta: tests/src/lib.rs

tests/src/lib.rs:
