/root/repo/target/release/deps/repro-e90204e14776f28d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e90204e14776f28d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
