/root/repo/target/release/deps/compress_pipeline-5f9bcea19a73718c.d: examples/compress_pipeline.rs

/root/repo/target/release/deps/compress_pipeline-5f9bcea19a73718c: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
