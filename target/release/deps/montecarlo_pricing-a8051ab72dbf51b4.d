/root/repo/target/release/deps/montecarlo_pricing-a8051ab72dbf51b4.d: examples/montecarlo_pricing.rs

/root/repo/target/release/deps/montecarlo_pricing-a8051ab72dbf51b4: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
