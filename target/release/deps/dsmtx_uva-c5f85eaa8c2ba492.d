/root/repo/target/release/deps/dsmtx_uva-c5f85eaa8c2ba492.d: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/release/deps/libdsmtx_uva-c5f85eaa8c2ba492.rlib: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/release/deps/libdsmtx_uva-c5f85eaa8c2ba492.rmeta: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

crates/uva/src/lib.rs:
crates/uva/src/addr.rs:
crates/uva/src/alloc.rs:
