/root/repo/target/release/deps/dsmtx_uva-48ebc565733e82e3.d: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/release/deps/libdsmtx_uva-48ebc565733e82e3.rlib: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/release/deps/libdsmtx_uva-48ebc565733e82e3.rmeta: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

crates/uva/src/lib.rs:
crates/uva/src/addr.rs:
crates/uva/src/alloc.rs:
