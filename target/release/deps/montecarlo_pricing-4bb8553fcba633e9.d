/root/repo/target/release/deps/montecarlo_pricing-4bb8553fcba633e9.d: examples/montecarlo_pricing.rs

/root/repo/target/release/deps/montecarlo_pricing-4bb8553fcba633e9: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
