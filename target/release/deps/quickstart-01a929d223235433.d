/root/repo/target/release/deps/quickstart-01a929d223235433.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-01a929d223235433: examples/quickstart.rs

examples/quickstart.rs:
