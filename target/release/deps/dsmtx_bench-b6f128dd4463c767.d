/root/repo/target/release/deps/dsmtx_bench-b6f128dd4463c767.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

/root/repo/target/release/deps/libdsmtx_bench-b6f128dd4463c767.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

/root/repo/target/release/deps/libdsmtx_bench-b6f128dd4463c767.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/tracedemo.rs:
