/root/repo/target/release/deps/repro-629886dab9c92259.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-629886dab9c92259: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
