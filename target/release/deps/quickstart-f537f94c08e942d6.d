/root/repo/target/release/deps/quickstart-f537f94c08e942d6.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-f537f94c08e942d6: examples/quickstart.rs

examples/quickstart.rs:
