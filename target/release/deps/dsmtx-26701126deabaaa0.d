/root/repo/target/release/deps/dsmtx-26701126deabaaa0.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

/root/repo/target/release/deps/libdsmtx-26701126deabaaa0.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

/root/repo/target/release/deps/libdsmtx-26701126deabaaa0.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/commit.rs:
crates/core/src/config.rs:
crates/core/src/control.rs:
crates/core/src/ids.rs:
crates/core/src/poll.rs:
crates/core/src/program.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/trycommit.rs:
crates/core/src/wire.rs:
crates/core/src/worker.rs:
