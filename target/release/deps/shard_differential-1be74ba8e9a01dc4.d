/root/repo/target/release/deps/shard_differential-1be74ba8e9a01dc4.d: tests/tests/shard_differential.rs

/root/repo/target/release/deps/shard_differential-1be74ba8e9a01dc4: tests/tests/shard_differential.rs

tests/tests/shard_differential.rs:
