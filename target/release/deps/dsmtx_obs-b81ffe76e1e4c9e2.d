/root/repo/target/release/deps/dsmtx_obs-b81ffe76e1e4c9e2.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libdsmtx_obs-b81ffe76e1e4c9e2.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libdsmtx_obs-b81ffe76e1e4c9e2.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
