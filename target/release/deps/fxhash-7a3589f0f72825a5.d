/root/repo/target/release/deps/fxhash-7a3589f0f72825a5.d: vendor/fxhash/src/lib.rs

/root/repo/target/release/deps/libfxhash-7a3589f0f72825a5.rlib: vendor/fxhash/src/lib.rs

/root/repo/target/release/deps/libfxhash-7a3589f0f72825a5.rmeta: vendor/fxhash/src/lib.rs

vendor/fxhash/src/lib.rs:
