/root/repo/target/release/deps/dsmtx_integration_tests-8e662327e6068232.d: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-8e662327e6068232.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-8e662327e6068232.rmeta: tests/src/lib.rs

tests/src/lib.rs:
