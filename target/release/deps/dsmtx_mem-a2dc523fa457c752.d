/root/repo/target/release/deps/dsmtx_mem-a2dc523fa457c752.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/release/deps/libdsmtx_mem-a2dc523fa457c752.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/release/deps/libdsmtx_mem-a2dc523fa457c752.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/shard.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
