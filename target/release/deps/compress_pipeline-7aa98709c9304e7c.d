/root/repo/target/release/deps/compress_pipeline-7aa98709c9304e7c.d: examples/compress_pipeline.rs

/root/repo/target/release/deps/compress_pipeline-7aa98709c9304e7c: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
