/root/repo/target/release/deps/dsmtx_paradigms-0c07ab3cc481d9fe.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-0c07ab3cc481d9fe.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-0c07ab3cc481d9fe.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
