/root/repo/target/release/deps/runtime_microbench-c28f94c7a24e8a9b.d: crates/bench/benches/runtime_microbench.rs

/root/repo/target/release/deps/runtime_microbench-c28f94c7a24e8a9b: crates/bench/benches/runtime_microbench.rs

crates/bench/benches/runtime_microbench.rs:
