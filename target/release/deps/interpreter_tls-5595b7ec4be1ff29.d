/root/repo/target/release/deps/interpreter_tls-5595b7ec4be1ff29.d: examples/interpreter_tls.rs

/root/repo/target/release/deps/interpreter_tls-5595b7ec4be1ff29: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
