/root/repo/target/release/deps/valplane_differential-b63602b14298cf79.d: tests/tests/valplane_differential.rs

/root/repo/target/release/deps/valplane_differential-b63602b14298cf79: tests/tests/valplane_differential.rs

tests/tests/valplane_differential.rs:
