/root/repo/target/release/deps/dsmtx_sim-f663f9f8d85439a6.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

/root/repo/target/release/deps/libdsmtx_sim-f663f9f8d85439a6.rlib: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

/root/repo/target/release/deps/libdsmtx_sim-f663f9f8d85439a6.rmeta: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/report.rs:
crates/sim/src/schedule.rs:
