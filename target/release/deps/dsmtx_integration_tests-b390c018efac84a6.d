/root/repo/target/release/deps/dsmtx_integration_tests-b390c018efac84a6.d: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-b390c018efac84a6.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libdsmtx_integration_tests-b390c018efac84a6.rmeta: tests/src/lib.rs

tests/src/lib.rs:
