/root/repo/target/release/deps/interpreter_tls-dc78c63e0d385866.d: examples/interpreter_tls.rs

/root/repo/target/release/deps/interpreter_tls-dc78c63e0d385866: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
