/root/repo/target/release/deps/dsmtx-b2290fbeddf6d945.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

/root/repo/target/release/deps/libdsmtx-b2290fbeddf6d945.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

/root/repo/target/release/deps/libdsmtx-b2290fbeddf6d945.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/commit.rs:
crates/core/src/config.rs:
crates/core/src/control.rs:
crates/core/src/ids.rs:
crates/core/src/poll.rs:
crates/core/src/program.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/trycommit.rs:
crates/core/src/wire.rs:
crates/core/src/worker.rs:
