/root/repo/target/release/deps/dsmtx_mem-da848d461fd7477d.d: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/release/deps/libdsmtx_mem-da848d461fd7477d.rlib: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/release/deps/libdsmtx_mem-da848d461fd7477d.rmeta: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
