/root/repo/target/release/deps/runtime_props-0fcde47fa3c347da.d: tests/tests/runtime_props.rs

/root/repo/target/release/deps/runtime_props-0fcde47fa3c347da: tests/tests/runtime_props.rs

tests/tests/runtime_props.rs:
