/root/repo/target/release/deps/recovery_stress-86edb48481d56cdc.d: tests/tests/recovery_stress.rs

/root/repo/target/release/deps/recovery_stress-86edb48481d56cdc: tests/tests/recovery_stress.rs

tests/tests/recovery_stress.rs:
