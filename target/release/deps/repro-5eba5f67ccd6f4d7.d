/root/repo/target/release/deps/repro-5eba5f67ccd6f4d7.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5eba5f67ccd6f4d7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
