/root/repo/target/release/deps/dsmtx_obs-b8bbbd7f090c2fcd.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libdsmtx_obs-b8bbbd7f090c2fcd.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libdsmtx_obs-b8bbbd7f090c2fcd.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
