/root/repo/target/release/deps/dsmtx_paradigms-f1371205b64d3064.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-f1371205b64d3064.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-f1371205b64d3064.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
