/root/repo/target/release/deps/dsmtx_paradigms-d748f790639a5cbe.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-d748f790639a5cbe.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/release/deps/libdsmtx_paradigms-d748f790639a5cbe.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
