/root/repo/target/release/deps/dsmtx_workloads-a8cef6bbfd022820.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/registry.rs crates/workloads/src/alvinn.rs crates/workloads/src/art.rs crates/workloads/src/blackscholes.rs crates/workloads/src/bzip2.rs crates/workloads/src/crc32.rs crates/workloads/src/gzip.rs crates/workloads/src/h264ref.rs crates/workloads/src/hmmer.rs crates/workloads/src/li.rs crates/workloads/src/parser.rs crates/workloads/src/swaptions.rs

/root/repo/target/release/deps/libdsmtx_workloads-a8cef6bbfd022820.rlib: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/registry.rs crates/workloads/src/alvinn.rs crates/workloads/src/art.rs crates/workloads/src/blackscholes.rs crates/workloads/src/bzip2.rs crates/workloads/src/crc32.rs crates/workloads/src/gzip.rs crates/workloads/src/h264ref.rs crates/workloads/src/hmmer.rs crates/workloads/src/li.rs crates/workloads/src/parser.rs crates/workloads/src/swaptions.rs

/root/repo/target/release/deps/libdsmtx_workloads-a8cef6bbfd022820.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/registry.rs crates/workloads/src/alvinn.rs crates/workloads/src/art.rs crates/workloads/src/blackscholes.rs crates/workloads/src/bzip2.rs crates/workloads/src/crc32.rs crates/workloads/src/gzip.rs crates/workloads/src/h264ref.rs crates/workloads/src/hmmer.rs crates/workloads/src/li.rs crates/workloads/src/parser.rs crates/workloads/src/swaptions.rs

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/alvinn.rs:
crates/workloads/src/art.rs:
crates/workloads/src/blackscholes.rs:
crates/workloads/src/bzip2.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/gzip.rs:
crates/workloads/src/h264ref.rs:
crates/workloads/src/hmmer.rs:
crates/workloads/src/li.rs:
crates/workloads/src/parser.rs:
crates/workloads/src/swaptions.rs:
