/root/repo/target/debug/deps/invariants-4d973bcbb9140edd.d: tests/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-4d973bcbb9140edd.rmeta: tests/tests/invariants.rs Cargo.toml

tests/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
