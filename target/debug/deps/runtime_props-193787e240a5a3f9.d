/root/repo/target/debug/deps/runtime_props-193787e240a5a3f9.d: tests/tests/runtime_props.rs

/root/repo/target/debug/deps/runtime_props-193787e240a5a3f9: tests/tests/runtime_props.rs

tests/tests/runtime_props.rs:
