/root/repo/target/debug/deps/dsmtx_integration_tests-b90537f2c7b7155b.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-b90537f2c7b7155b.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-b90537f2c7b7155b.rmeta: tests/src/lib.rs

tests/src/lib.rs:
