/root/repo/target/debug/deps/dsmtx_integration_tests-f950470e07b00daa.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_integration_tests-f950470e07b00daa.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
