/root/repo/target/debug/deps/queue_throughput-c0e6b1b2e72710e0.d: crates/bench/benches/queue_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_throughput-c0e6b1b2e72710e0.rmeta: crates/bench/benches/queue_throughput.rs Cargo.toml

crates/bench/benches/queue_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
