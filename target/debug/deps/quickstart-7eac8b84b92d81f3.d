/root/repo/target/debug/deps/quickstart-7eac8b84b92d81f3.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-7eac8b84b92d81f3: examples/quickstart.rs

examples/quickstart.rs:
