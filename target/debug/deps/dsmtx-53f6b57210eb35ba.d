/root/repo/target/debug/deps/dsmtx-53f6b57210eb35ba.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/dsmtx-53f6b57210eb35ba: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/commit.rs:
crates/core/src/config.rs:
crates/core/src/control.rs:
crates/core/src/ids.rs:
crates/core/src/poll.rs:
crates/core/src/program.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/trycommit.rs:
crates/core/src/wire.rs:
crates/core/src/worker.rs:
