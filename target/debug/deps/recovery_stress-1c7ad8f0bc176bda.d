/root/repo/target/debug/deps/recovery_stress-1c7ad8f0bc176bda.d: tests/tests/recovery_stress.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_stress-1c7ad8f0bc176bda.rmeta: tests/tests/recovery_stress.rs Cargo.toml

tests/tests/recovery_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
