/root/repo/target/debug/deps/dsmtx_uva-3796db6254e5dddc.d: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/debug/deps/dsmtx_uva-3796db6254e5dddc: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

crates/uva/src/lib.rs:
crates/uva/src/addr.rs:
crates/uva/src/alloc.rs:
