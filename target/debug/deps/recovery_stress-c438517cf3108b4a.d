/root/repo/target/debug/deps/recovery_stress-c438517cf3108b4a.d: tests/tests/recovery_stress.rs

/root/repo/target/debug/deps/recovery_stress-c438517cf3108b4a: tests/tests/recovery_stress.rs

tests/tests/recovery_stress.rs:
