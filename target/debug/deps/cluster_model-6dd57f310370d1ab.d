/root/repo/target/debug/deps/cluster_model-6dd57f310370d1ab.d: examples/cluster_model.rs

/root/repo/target/debug/deps/cluster_model-6dd57f310370d1ab: examples/cluster_model.rs

examples/cluster_model.rs:
