/root/repo/target/debug/deps/dsmtx_paradigms-c68f8b163c486c88.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/libdsmtx_paradigms-c68f8b163c486c88.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/libdsmtx_paradigms-c68f8b163c486c88.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
