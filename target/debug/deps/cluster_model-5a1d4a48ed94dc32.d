/root/repo/target/debug/deps/cluster_model-5a1d4a48ed94dc32.d: examples/cluster_model.rs

/root/repo/target/debug/deps/cluster_model-5a1d4a48ed94dc32: examples/cluster_model.rs

examples/cluster_model.rs:
