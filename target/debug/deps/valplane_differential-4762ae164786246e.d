/root/repo/target/debug/deps/valplane_differential-4762ae164786246e.d: tests/tests/valplane_differential.rs Cargo.toml

/root/repo/target/debug/deps/libvalplane_differential-4762ae164786246e.rmeta: tests/tests/valplane_differential.rs Cargo.toml

tests/tests/valplane_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
