/root/repo/target/debug/deps/compress_pipeline-ddb7b87a2549f8bb.d: examples/compress_pipeline.rs

/root/repo/target/debug/deps/compress_pipeline-ddb7b87a2549f8bb: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
