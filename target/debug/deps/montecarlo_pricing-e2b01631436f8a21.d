/root/repo/target/debug/deps/montecarlo_pricing-e2b01631436f8a21.d: examples/montecarlo_pricing.rs Cargo.toml

/root/repo/target/debug/deps/libmontecarlo_pricing-e2b01631436f8a21.rmeta: examples/montecarlo_pricing.rs Cargo.toml

examples/montecarlo_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
