/root/repo/target/debug/deps/repro-56c94f87ed5763c6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-56c94f87ed5763c6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
