/root/repo/target/debug/deps/quickstart-971da987a23c51ba.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-971da987a23c51ba.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
