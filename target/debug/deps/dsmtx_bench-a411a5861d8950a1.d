/root/repo/target/debug/deps/dsmtx_bench-a411a5861d8950a1.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

/root/repo/target/debug/deps/dsmtx_bench-a411a5861d8950a1: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/tracedemo.rs:
