/root/repo/target/debug/deps/repro-507d9889b7baa91c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-507d9889b7baa91c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
