/root/repo/target/debug/deps/quickstart-bd546c22c24e55a0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-bd546c22c24e55a0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
