/root/repo/target/debug/deps/cluster_model-866144532e527d45.d: examples/cluster_model.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_model-866144532e527d45.rmeta: examples/cluster_model.rs Cargo.toml

examples/cluster_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
