/root/repo/target/debug/deps/repro-ad14d600fef8b1d9.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ad14d600fef8b1d9: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
