/root/repo/target/debug/deps/runtime-6a8eb2d098555131.d: crates/core/tests/runtime.rs

/root/repo/target/debug/deps/runtime-6a8eb2d098555131: crates/core/tests/runtime.rs

crates/core/tests/runtime.rs:
