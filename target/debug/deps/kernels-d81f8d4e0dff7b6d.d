/root/repo/target/debug/deps/kernels-d81f8d4e0dff7b6d.d: tests/tests/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-d81f8d4e0dff7b6d.rmeta: tests/tests/kernels.rs Cargo.toml

tests/tests/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
