/root/repo/target/debug/deps/dsmtx_integration_tests-446cc524f3c9b872.d: tests/src/lib.rs

/root/repo/target/debug/deps/dsmtx_integration_tests-446cc524f3c9b872: tests/src/lib.rs

tests/src/lib.rs:
