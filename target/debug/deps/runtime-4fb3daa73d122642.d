/root/repo/target/debug/deps/runtime-4fb3daa73d122642.d: crates/core/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-4fb3daa73d122642.rmeta: crates/core/tests/runtime.rs Cargo.toml

crates/core/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
