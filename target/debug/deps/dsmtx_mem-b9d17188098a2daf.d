/root/repo/target/debug/deps/dsmtx_mem-b9d17188098a2daf.d: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/dsmtx_mem-b9d17188098a2daf: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
