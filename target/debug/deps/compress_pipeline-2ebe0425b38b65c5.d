/root/repo/target/debug/deps/compress_pipeline-2ebe0425b38b65c5.d: examples/compress_pipeline.rs

/root/repo/target/debug/deps/compress_pipeline-2ebe0425b38b65c5: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
