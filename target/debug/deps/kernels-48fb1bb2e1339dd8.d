/root/repo/target/debug/deps/kernels-48fb1bb2e1339dd8.d: tests/tests/kernels.rs

/root/repo/target/debug/deps/kernels-48fb1bb2e1339dd8: tests/tests/kernels.rs

tests/tests/kernels.rs:
