/root/repo/target/debug/deps/fig6_recovery-bf64f9520fde86f4.d: crates/bench/benches/fig6_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_recovery-bf64f9520fde86f4.rmeta: crates/bench/benches/fig6_recovery.rs Cargo.toml

crates/bench/benches/fig6_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
