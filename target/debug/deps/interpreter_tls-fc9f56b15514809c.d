/root/repo/target/debug/deps/interpreter_tls-fc9f56b15514809c.d: examples/interpreter_tls.rs

/root/repo/target/debug/deps/interpreter_tls-fc9f56b15514809c: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
