/root/repo/target/debug/deps/valplane_differential-391c16057f31aa45.d: tests/tests/valplane_differential.rs

/root/repo/target/debug/deps/valplane_differential-391c16057f31aa45: tests/tests/valplane_differential.rs

tests/tests/valplane_differential.rs:
