/root/repo/target/debug/deps/queue_throughput-4d461fb9b31906ae.d: crates/bench/benches/queue_throughput.rs

/root/repo/target/debug/deps/queue_throughput-4d461fb9b31906ae: crates/bench/benches/queue_throughput.rs

crates/bench/benches/queue_throughput.rs:
