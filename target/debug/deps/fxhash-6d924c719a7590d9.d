/root/repo/target/debug/deps/fxhash-6d924c719a7590d9.d: vendor/fxhash/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfxhash-6d924c719a7590d9.rmeta: vendor/fxhash/src/lib.rs Cargo.toml

vendor/fxhash/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
