/root/repo/target/debug/deps/invariants-87f9f0d88de70a17.d: tests/tests/invariants.rs

/root/repo/target/debug/deps/invariants-87f9f0d88de70a17: tests/tests/invariants.rs

tests/tests/invariants.rs:
