/root/repo/target/debug/deps/fig1_latency_tolerance-65fb20c6d7d90c5f.d: crates/bench/benches/fig1_latency_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_latency_tolerance-65fb20c6d7d90c5f.rmeta: crates/bench/benches/fig1_latency_tolerance.rs Cargo.toml

crates/bench/benches/fig1_latency_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
