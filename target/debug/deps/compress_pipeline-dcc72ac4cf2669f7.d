/root/repo/target/debug/deps/compress_pipeline-dcc72ac4cf2669f7.d: examples/compress_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcompress_pipeline-dcc72ac4cf2669f7.rmeta: examples/compress_pipeline.rs Cargo.toml

examples/compress_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
