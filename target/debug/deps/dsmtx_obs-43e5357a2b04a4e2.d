/root/repo/target/debug/deps/dsmtx_obs-43e5357a2b04a4e2.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/dsmtx_obs-43e5357a2b04a4e2: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
