/root/repo/target/debug/deps/ablations-b455b9ba16da84ea.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-b455b9ba16da84ea.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
