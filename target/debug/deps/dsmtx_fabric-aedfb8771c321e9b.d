/root/repo/target/debug/deps/dsmtx_fabric-aedfb8771c321e9b.d: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/dsmtx_fabric-aedfb8771c321e9b: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/barrier.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/mesh.rs:
crates/fabric/src/queue.rs:
crates/fabric/src/stats.rs:
