/root/repo/target/debug/deps/dsmtx_mem-479d983e4d4878a7.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/libdsmtx_mem-479d983e4d4878a7.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/libdsmtx_mem-479d983e4d4878a7.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/shard.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
