/root/repo/target/debug/deps/runtime_props-46df067ee2964b6a.d: tests/tests/runtime_props.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_props-46df067ee2964b6a.rmeta: tests/tests/runtime_props.rs Cargo.toml

tests/tests/runtime_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
