/root/repo/target/debug/deps/recovery_stress-40038c640bd4fd81.d: tests/tests/recovery_stress.rs

/root/repo/target/debug/deps/recovery_stress-40038c640bd4fd81: tests/tests/recovery_stress.rs

tests/tests/recovery_stress.rs:
