/root/repo/target/debug/deps/quickstart-86482cbb4e9dfe62.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-86482cbb4e9dfe62: examples/quickstart.rs

examples/quickstart.rs:
