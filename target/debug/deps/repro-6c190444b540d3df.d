/root/repo/target/debug/deps/repro-6c190444b540d3df.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6c190444b540d3df: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
