/root/repo/target/debug/deps/dsmtx_integration_tests-bc52f44ff4a0ea6d.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_integration_tests-bc52f44ff4a0ea6d.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
