/root/repo/target/debug/deps/kernels-4fe14dd63ff5598e.d: tests/tests/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-4fe14dd63ff5598e.rmeta: tests/tests/kernels.rs Cargo.toml

tests/tests/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
