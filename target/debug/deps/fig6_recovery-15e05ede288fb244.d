/root/repo/target/debug/deps/fig6_recovery-15e05ede288fb244.d: crates/bench/benches/fig6_recovery.rs

/root/repo/target/debug/deps/fig6_recovery-15e05ede288fb244: crates/bench/benches/fig6_recovery.rs

crates/bench/benches/fig6_recovery.rs:
