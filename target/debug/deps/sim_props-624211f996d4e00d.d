/root/repo/target/debug/deps/sim_props-624211f996d4e00d.d: tests/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-624211f996d4e00d: tests/tests/sim_props.rs

tests/tests/sim_props.rs:
