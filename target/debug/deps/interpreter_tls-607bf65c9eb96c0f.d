/root/repo/target/debug/deps/interpreter_tls-607bf65c9eb96c0f.d: examples/interpreter_tls.rs

/root/repo/target/debug/deps/interpreter_tls-607bf65c9eb96c0f: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
