/root/repo/target/debug/deps/queue_throughput-3a2690531c654671.d: crates/bench/benches/queue_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_throughput-3a2690531c654671.rmeta: crates/bench/benches/queue_throughput.rs Cargo.toml

crates/bench/benches/queue_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
