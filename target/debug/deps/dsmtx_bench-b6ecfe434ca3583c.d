/root/repo/target/debug/deps/dsmtx_bench-b6ecfe434ca3583c.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/debug/deps/libdsmtx_bench-b6ecfe434ca3583c.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/debug/deps/libdsmtx_bench-b6ecfe434ca3583c.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
crates/bench/src/valplane.rs:
