/root/repo/target/debug/deps/dsmtx_paradigms-4665122757af5e0c.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_paradigms-4665122757af5e0c.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
