/root/repo/target/debug/deps/montecarlo_pricing-41af8d19d01b21da.d: examples/montecarlo_pricing.rs

/root/repo/target/debug/deps/montecarlo_pricing-41af8d19d01b21da: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
