/root/repo/target/debug/deps/dsmtx_paradigms-a4f68b4f4d86f2b0.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_paradigms-a4f68b4f4d86f2b0.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
