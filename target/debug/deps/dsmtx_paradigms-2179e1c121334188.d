/root/repo/target/debug/deps/dsmtx_paradigms-2179e1c121334188.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/dsmtx_paradigms-2179e1c121334188: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
