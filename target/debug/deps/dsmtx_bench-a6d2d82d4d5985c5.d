/root/repo/target/debug/deps/dsmtx_bench-a6d2d82d4d5985c5.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

/root/repo/target/debug/deps/dsmtx_bench-a6d2d82d4d5985c5: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
crates/bench/src/valplane.rs:
