/root/repo/target/debug/deps/sim_props-87a4b5f8abfa2605.d: tests/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-87a4b5f8abfa2605: tests/tests/sim_props.rs

tests/tests/sim_props.rs:
