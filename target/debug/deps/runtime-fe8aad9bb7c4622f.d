/root/repo/target/debug/deps/runtime-fe8aad9bb7c4622f.d: crates/core/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-fe8aad9bb7c4622f.rmeta: crates/core/tests/runtime.rs Cargo.toml

crates/core/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
