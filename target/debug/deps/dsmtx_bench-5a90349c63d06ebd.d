/root/repo/target/debug/deps/dsmtx_bench-5a90349c63d06ebd.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

/root/repo/target/debug/deps/libdsmtx_bench-5a90349c63d06ebd.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

/root/repo/target/debug/deps/libdsmtx_bench-5a90349c63d06ebd.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/tracedemo.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/tracedemo.rs:
