/root/repo/target/debug/deps/runtime_microbench-8995f663d17b994f.d: crates/bench/benches/runtime_microbench.rs

/root/repo/target/debug/deps/runtime_microbench-8995f663d17b994f: crates/bench/benches/runtime_microbench.rs

crates/bench/benches/runtime_microbench.rs:
