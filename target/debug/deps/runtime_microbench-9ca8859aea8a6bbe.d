/root/repo/target/debug/deps/runtime_microbench-9ca8859aea8a6bbe.d: crates/bench/benches/runtime_microbench.rs

/root/repo/target/debug/deps/runtime_microbench-9ca8859aea8a6bbe: crates/bench/benches/runtime_microbench.rs

crates/bench/benches/runtime_microbench.rs:
