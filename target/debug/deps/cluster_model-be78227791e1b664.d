/root/repo/target/debug/deps/cluster_model-be78227791e1b664.d: examples/cluster_model.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_model-be78227791e1b664.rmeta: examples/cluster_model.rs Cargo.toml

examples/cluster_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
