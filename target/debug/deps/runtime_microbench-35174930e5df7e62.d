/root/repo/target/debug/deps/runtime_microbench-35174930e5df7e62.d: crates/bench/benches/runtime_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_microbench-35174930e5df7e62.rmeta: crates/bench/benches/runtime_microbench.rs Cargo.toml

crates/bench/benches/runtime_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
