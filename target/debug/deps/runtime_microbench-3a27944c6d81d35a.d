/root/repo/target/debug/deps/runtime_microbench-3a27944c6d81d35a.d: crates/bench/benches/runtime_microbench.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_microbench-3a27944c6d81d35a.rmeta: crates/bench/benches/runtime_microbench.rs Cargo.toml

crates/bench/benches/runtime_microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
