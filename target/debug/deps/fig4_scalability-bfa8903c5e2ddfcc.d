/root/repo/target/debug/deps/fig4_scalability-bfa8903c5e2ddfcc.d: crates/bench/benches/fig4_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_scalability-bfa8903c5e2ddfcc.rmeta: crates/bench/benches/fig4_scalability.rs Cargo.toml

crates/bench/benches/fig4_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
