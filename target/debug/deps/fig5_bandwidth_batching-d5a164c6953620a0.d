/root/repo/target/debug/deps/fig5_bandwidth_batching-d5a164c6953620a0.d: crates/bench/benches/fig5_bandwidth_batching.rs

/root/repo/target/debug/deps/fig5_bandwidth_batching-d5a164c6953620a0: crates/bench/benches/fig5_bandwidth_batching.rs

crates/bench/benches/fig5_bandwidth_batching.rs:
