/root/repo/target/debug/deps/dsmtx_bench-f53c0225b9d490fc.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_bench-f53c0225b9d490fc.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs crates/bench/src/valplane.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
crates/bench/src/valplane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
