/root/repo/target/debug/deps/montecarlo_pricing-1ad1f4afd881601c.d: examples/montecarlo_pricing.rs Cargo.toml

/root/repo/target/debug/deps/libmontecarlo_pricing-1ad1f4afd881601c.rmeta: examples/montecarlo_pricing.rs Cargo.toml

examples/montecarlo_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
