/root/repo/target/debug/deps/dsmtx-8ca024f6f5efada9.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx-8ca024f6f5efada9.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/commit.rs crates/core/src/config.rs crates/core/src/control.rs crates/core/src/ids.rs crates/core/src/poll.rs crates/core/src/program.rs crates/core/src/report.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/trycommit.rs crates/core/src/wire.rs crates/core/src/worker.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/commit.rs:
crates/core/src/config.rs:
crates/core/src/control.rs:
crates/core/src/ids.rs:
crates/core/src/poll.rs:
crates/core/src/program.rs:
crates/core/src/report.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/trycommit.rs:
crates/core/src/wire.rs:
crates/core/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
