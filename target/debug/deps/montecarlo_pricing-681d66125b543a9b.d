/root/repo/target/debug/deps/montecarlo_pricing-681d66125b543a9b.d: examples/montecarlo_pricing.rs Cargo.toml

/root/repo/target/debug/deps/libmontecarlo_pricing-681d66125b543a9b.rmeta: examples/montecarlo_pricing.rs Cargo.toml

examples/montecarlo_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
