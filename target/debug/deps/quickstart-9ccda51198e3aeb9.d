/root/repo/target/debug/deps/quickstart-9ccda51198e3aeb9.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-9ccda51198e3aeb9: examples/quickstart.rs

examples/quickstart.rs:
