/root/repo/target/debug/deps/runtime_props-3867aaf9ed1d247f.d: tests/tests/runtime_props.rs

/root/repo/target/debug/deps/runtime_props-3867aaf9ed1d247f: tests/tests/runtime_props.rs

tests/tests/runtime_props.rs:
