/root/repo/target/debug/deps/cluster_model-4885e08afa8feaa0.d: examples/cluster_model.rs

/root/repo/target/debug/deps/cluster_model-4885e08afa8feaa0: examples/cluster_model.rs

examples/cluster_model.rs:
