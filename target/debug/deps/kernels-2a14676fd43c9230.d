/root/repo/target/debug/deps/kernels-2a14676fd43c9230.d: tests/tests/kernels.rs

/root/repo/target/debug/deps/kernels-2a14676fd43c9230: tests/tests/kernels.rs

tests/tests/kernels.rs:
