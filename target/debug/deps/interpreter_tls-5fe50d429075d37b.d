/root/repo/target/debug/deps/interpreter_tls-5fe50d429075d37b.d: examples/interpreter_tls.rs

/root/repo/target/debug/deps/interpreter_tls-5fe50d429075d37b: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
