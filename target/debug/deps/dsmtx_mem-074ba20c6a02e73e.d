/root/repo/target/debug/deps/dsmtx_mem-074ba20c6a02e73e.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_mem-074ba20c6a02e73e.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/shard.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
