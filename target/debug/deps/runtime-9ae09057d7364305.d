/root/repo/target/debug/deps/runtime-9ae09057d7364305.d: crates/core/tests/runtime.rs

/root/repo/target/debug/deps/runtime-9ae09057d7364305: crates/core/tests/runtime.rs

crates/core/tests/runtime.rs:
