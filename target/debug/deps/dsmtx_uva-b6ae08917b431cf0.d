/root/repo/target/debug/deps/dsmtx_uva-b6ae08917b431cf0.d: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/debug/deps/libdsmtx_uva-b6ae08917b431cf0.rlib: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

/root/repo/target/debug/deps/libdsmtx_uva-b6ae08917b431cf0.rmeta: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs

crates/uva/src/lib.rs:
crates/uva/src/addr.rs:
crates/uva/src/alloc.rs:
