/root/repo/target/debug/deps/fig6_recovery-dcbde590294546b6.d: crates/bench/benches/fig6_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_recovery-dcbde590294546b6.rmeta: crates/bench/benches/fig6_recovery.rs Cargo.toml

crates/bench/benches/fig6_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
