/root/repo/target/debug/deps/dsmtx_sim-dcd8cecb871929d4.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_sim-dcd8cecb871929d4.rmeta: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/report.rs:
crates/sim/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
