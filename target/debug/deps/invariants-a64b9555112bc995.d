/root/repo/target/debug/deps/invariants-a64b9555112bc995.d: tests/tests/invariants.rs

/root/repo/target/debug/deps/invariants-a64b9555112bc995: tests/tests/invariants.rs

tests/tests/invariants.rs:
