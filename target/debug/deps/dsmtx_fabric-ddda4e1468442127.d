/root/repo/target/debug/deps/dsmtx_fabric-ddda4e1468442127.d: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_fabric-ddda4e1468442127.rmeta: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/barrier.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/mesh.rs:
crates/fabric/src/queue.rs:
crates/fabric/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
