/root/repo/target/debug/deps/fig1_latency_tolerance-01eeac03066c2077.d: crates/bench/benches/fig1_latency_tolerance.rs

/root/repo/target/debug/deps/fig1_latency_tolerance-01eeac03066c2077: crates/bench/benches/fig1_latency_tolerance.rs

crates/bench/benches/fig1_latency_tolerance.rs:
