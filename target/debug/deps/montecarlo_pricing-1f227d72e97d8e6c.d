/root/repo/target/debug/deps/montecarlo_pricing-1f227d72e97d8e6c.d: examples/montecarlo_pricing.rs

/root/repo/target/debug/deps/montecarlo_pricing-1f227d72e97d8e6c: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
