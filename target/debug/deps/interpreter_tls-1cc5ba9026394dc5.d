/root/repo/target/debug/deps/interpreter_tls-1cc5ba9026394dc5.d: examples/interpreter_tls.rs

/root/repo/target/debug/deps/interpreter_tls-1cc5ba9026394dc5: examples/interpreter_tls.rs

examples/interpreter_tls.rs:
