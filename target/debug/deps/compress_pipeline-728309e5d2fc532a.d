/root/repo/target/debug/deps/compress_pipeline-728309e5d2fc532a.d: examples/compress_pipeline.rs

/root/repo/target/debug/deps/compress_pipeline-728309e5d2fc532a: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
