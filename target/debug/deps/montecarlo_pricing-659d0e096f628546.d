/root/repo/target/debug/deps/montecarlo_pricing-659d0e096f628546.d: examples/montecarlo_pricing.rs

/root/repo/target/debug/deps/montecarlo_pricing-659d0e096f628546: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
