/root/repo/target/debug/deps/fig1_latency_tolerance-02a093cd4187a877.d: crates/bench/benches/fig1_latency_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_latency_tolerance-02a093cd4187a877.rmeta: crates/bench/benches/fig1_latency_tolerance.rs Cargo.toml

crates/bench/benches/fig1_latency_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
