/root/repo/target/debug/deps/fig5_bandwidth_batching-1ab0a850a2fb8a5b.d: crates/bench/benches/fig5_bandwidth_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bandwidth_batching-1ab0a850a2fb8a5b.rmeta: crates/bench/benches/fig5_bandwidth_batching.rs Cargo.toml

crates/bench/benches/fig5_bandwidth_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
