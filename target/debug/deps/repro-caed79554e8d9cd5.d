/root/repo/target/debug/deps/repro-caed79554e8d9cd5.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-caed79554e8d9cd5.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
