/root/repo/target/debug/deps/fig4_scalability-c7d73279bd0bcf36.d: crates/bench/benches/fig4_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_scalability-c7d73279bd0bcf36.rmeta: crates/bench/benches/fig4_scalability.rs Cargo.toml

crates/bench/benches/fig4_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
