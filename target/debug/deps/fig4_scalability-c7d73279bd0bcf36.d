/root/repo/target/debug/deps/fig4_scalability-c7d73279bd0bcf36.d: crates/bench/benches/fig4_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_scalability-c7d73279bd0bcf36.rmeta: crates/bench/benches/fig4_scalability.rs Cargo.toml

crates/bench/benches/fig4_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
