/root/repo/target/debug/deps/dsmtx_mem-18e9253e813e20e2.d: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/libdsmtx_mem-18e9253e813e20e2.rlib: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/libdsmtx_mem-18e9253e813e20e2.rmeta: crates/mem/src/lib.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
