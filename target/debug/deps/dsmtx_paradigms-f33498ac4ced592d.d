/root/repo/target/debug/deps/dsmtx_paradigms-f33498ac4ced592d.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/libdsmtx_paradigms-f33498ac4ced592d.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/libdsmtx_paradigms-f33498ac4ced592d.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
