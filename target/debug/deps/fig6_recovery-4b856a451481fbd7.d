/root/repo/target/debug/deps/fig6_recovery-4b856a451481fbd7.d: crates/bench/benches/fig6_recovery.rs

/root/repo/target/debug/deps/fig6_recovery-4b856a451481fbd7: crates/bench/benches/fig6_recovery.rs

crates/bench/benches/fig6_recovery.rs:
