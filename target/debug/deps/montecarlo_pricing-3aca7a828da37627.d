/root/repo/target/debug/deps/montecarlo_pricing-3aca7a828da37627.d: examples/montecarlo_pricing.rs

/root/repo/target/debug/deps/montecarlo_pricing-3aca7a828da37627: examples/montecarlo_pricing.rs

examples/montecarlo_pricing.rs:
