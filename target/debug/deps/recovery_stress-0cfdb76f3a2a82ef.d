/root/repo/target/debug/deps/recovery_stress-0cfdb76f3a2a82ef.d: tests/tests/recovery_stress.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_stress-0cfdb76f3a2a82ef.rmeta: tests/tests/recovery_stress.rs Cargo.toml

tests/tests/recovery_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
