/root/repo/target/debug/deps/quickstart-b408d9a5687d0e3f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-b408d9a5687d0e3f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
