/root/repo/target/debug/deps/kernels-a2ec4b36e3524615.d: tests/tests/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-a2ec4b36e3524615.rmeta: tests/tests/kernels.rs Cargo.toml

tests/tests/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
