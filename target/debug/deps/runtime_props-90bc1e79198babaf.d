/root/repo/target/debug/deps/runtime_props-90bc1e79198babaf.d: tests/tests/runtime_props.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_props-90bc1e79198babaf.rmeta: tests/tests/runtime_props.rs Cargo.toml

tests/tests/runtime_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
