/root/repo/target/debug/deps/sim_props-68a74e71b5e8a0ba.d: tests/tests/sim_props.rs Cargo.toml

/root/repo/target/debug/deps/libsim_props-68a74e71b5e8a0ba.rmeta: tests/tests/sim_props.rs Cargo.toml

tests/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
