/root/repo/target/debug/deps/recovery_stress-59ede555e598dab9.d: tests/tests/recovery_stress.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_stress-59ede555e598dab9.rmeta: tests/tests/recovery_stress.rs Cargo.toml

tests/tests/recovery_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
