/root/repo/target/debug/deps/dsmtx_paradigms-0d8bf8452c8d5507.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

/root/repo/target/debug/deps/dsmtx_paradigms-0d8bf8452c8d5507: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
