/root/repo/target/debug/deps/dsmtx_mem-17d01edc7c14439c.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

/root/repo/target/debug/deps/dsmtx_mem-17d01edc7c14439c: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/log.rs crates/mem/src/master.rs crates/mem/src/page.rs crates/mem/src/shard.rs crates/mem/src/spec.rs crates/mem/src/table.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/log.rs:
crates/mem/src/master.rs:
crates/mem/src/page.rs:
crates/mem/src/shard.rs:
crates/mem/src/spec.rs:
crates/mem/src/table.rs:
