/root/repo/target/debug/deps/dsmtx_uva-5db2ce5f317592fd.d: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_uva-5db2ce5f317592fd.rmeta: crates/uva/src/lib.rs crates/uva/src/addr.rs crates/uva/src/alloc.rs Cargo.toml

crates/uva/src/lib.rs:
crates/uva/src/addr.rs:
crates/uva/src/alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
