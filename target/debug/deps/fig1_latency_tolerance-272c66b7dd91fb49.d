/root/repo/target/debug/deps/fig1_latency_tolerance-272c66b7dd91fb49.d: crates/bench/benches/fig1_latency_tolerance.rs

/root/repo/target/debug/deps/fig1_latency_tolerance-272c66b7dd91fb49: crates/bench/benches/fig1_latency_tolerance.rs

crates/bench/benches/fig1_latency_tolerance.rs:
