/root/repo/target/debug/deps/interpreter_tls-67daf1ccf74dfe3b.d: examples/interpreter_tls.rs Cargo.toml

/root/repo/target/debug/deps/libinterpreter_tls-67daf1ccf74dfe3b.rmeta: examples/interpreter_tls.rs Cargo.toml

examples/interpreter_tls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
