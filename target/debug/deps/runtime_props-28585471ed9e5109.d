/root/repo/target/debug/deps/runtime_props-28585471ed9e5109.d: tests/tests/runtime_props.rs

/root/repo/target/debug/deps/runtime_props-28585471ed9e5109: tests/tests/runtime_props.rs

tests/tests/runtime_props.rs:
