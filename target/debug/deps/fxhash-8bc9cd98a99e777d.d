/root/repo/target/debug/deps/fxhash-8bc9cd98a99e777d.d: vendor/fxhash/src/lib.rs

/root/repo/target/debug/deps/libfxhash-8bc9cd98a99e777d.rlib: vendor/fxhash/src/lib.rs

/root/repo/target/debug/deps/libfxhash-8bc9cd98a99e777d.rmeta: vendor/fxhash/src/lib.rs

vendor/fxhash/src/lib.rs:
