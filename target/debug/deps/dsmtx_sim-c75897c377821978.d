/root/repo/target/debug/deps/dsmtx_sim-c75897c377821978.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

/root/repo/target/debug/deps/libdsmtx_sim-c75897c377821978.rlib: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

/root/repo/target/debug/deps/libdsmtx_sim-c75897c377821978.rmeta: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/report.rs:
crates/sim/src/schedule.rs:
