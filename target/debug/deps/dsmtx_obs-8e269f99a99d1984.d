/root/repo/target/debug/deps/dsmtx_obs-8e269f99a99d1984.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_obs-8e269f99a99d1984.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
