/root/repo/target/debug/deps/repro-7fbc658f5feed5cc.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7fbc658f5feed5cc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
