/root/repo/target/debug/deps/dsmtx_integration_tests-a472bf8178f85e6a.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-a472bf8178f85e6a.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-a472bf8178f85e6a.rmeta: tests/src/lib.rs

tests/src/lib.rs:
