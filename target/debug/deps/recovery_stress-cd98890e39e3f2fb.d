/root/repo/target/debug/deps/recovery_stress-cd98890e39e3f2fb.d: tests/tests/recovery_stress.rs

/root/repo/target/debug/deps/recovery_stress-cd98890e39e3f2fb: tests/tests/recovery_stress.rs

tests/tests/recovery_stress.rs:
