/root/repo/target/debug/deps/probe_tmp-0d725ba0fc90bdb0.d: tests/tests/probe_tmp.rs

/root/repo/target/debug/deps/probe_tmp-0d725ba0fc90bdb0: tests/tests/probe_tmp.rs

tests/tests/probe_tmp.rs:
