/root/repo/target/debug/deps/quickstart-837cf21698f04a3f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-837cf21698f04a3f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
