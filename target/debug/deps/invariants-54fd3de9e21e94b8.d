/root/repo/target/debug/deps/invariants-54fd3de9e21e94b8.d: tests/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-54fd3de9e21e94b8.rmeta: tests/tests/invariants.rs Cargo.toml

tests/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
