/root/repo/target/debug/deps/compress_pipeline-d857fc1c5adbcba0.d: examples/compress_pipeline.rs

/root/repo/target/debug/deps/compress_pipeline-d857fc1c5adbcba0: examples/compress_pipeline.rs

examples/compress_pipeline.rs:
