/root/repo/target/debug/deps/dsmtx_integration_tests-2c7222cc8382d7e2.d: tests/src/lib.rs

/root/repo/target/debug/deps/dsmtx_integration_tests-2c7222cc8382d7e2: tests/src/lib.rs

tests/src/lib.rs:
