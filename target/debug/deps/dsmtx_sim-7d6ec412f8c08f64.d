/root/repo/target/debug/deps/dsmtx_sim-7d6ec412f8c08f64.d: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

/root/repo/target/debug/deps/dsmtx_sim-7d6ec412f8c08f64: crates/sim/src/lib.rs crates/sim/src/ablation.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/report.rs crates/sim/src/schedule.rs

crates/sim/src/lib.rs:
crates/sim/src/ablation.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/report.rs:
crates/sim/src/schedule.rs:
