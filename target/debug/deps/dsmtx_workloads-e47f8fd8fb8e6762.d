/root/repo/target/debug/deps/dsmtx_workloads-e47f8fd8fb8e6762.d: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/registry.rs crates/workloads/src/alvinn.rs crates/workloads/src/art.rs crates/workloads/src/blackscholes.rs crates/workloads/src/bzip2.rs crates/workloads/src/crc32.rs crates/workloads/src/gzip.rs crates/workloads/src/h264ref.rs crates/workloads/src/hmmer.rs crates/workloads/src/li.rs crates/workloads/src/parser.rs crates/workloads/src/swaptions.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_workloads-e47f8fd8fb8e6762.rmeta: crates/workloads/src/lib.rs crates/workloads/src/common.rs crates/workloads/src/registry.rs crates/workloads/src/alvinn.rs crates/workloads/src/art.rs crates/workloads/src/blackscholes.rs crates/workloads/src/bzip2.rs crates/workloads/src/crc32.rs crates/workloads/src/gzip.rs crates/workloads/src/h264ref.rs crates/workloads/src/hmmer.rs crates/workloads/src/li.rs crates/workloads/src/parser.rs crates/workloads/src/swaptions.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/common.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/alvinn.rs:
crates/workloads/src/art.rs:
crates/workloads/src/blackscholes.rs:
crates/workloads/src/bzip2.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/gzip.rs:
crates/workloads/src/h264ref.rs:
crates/workloads/src/hmmer.rs:
crates/workloads/src/li.rs:
crates/workloads/src/parser.rs:
crates/workloads/src/swaptions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
