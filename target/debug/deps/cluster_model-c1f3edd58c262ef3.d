/root/repo/target/debug/deps/cluster_model-c1f3edd58c262ef3.d: examples/cluster_model.rs

/root/repo/target/debug/deps/cluster_model-c1f3edd58c262ef3: examples/cluster_model.rs

examples/cluster_model.rs:
