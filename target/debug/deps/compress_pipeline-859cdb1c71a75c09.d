/root/repo/target/debug/deps/compress_pipeline-859cdb1c71a75c09.d: examples/compress_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcompress_pipeline-859cdb1c71a75c09.rmeta: examples/compress_pipeline.rs Cargo.toml

examples/compress_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
