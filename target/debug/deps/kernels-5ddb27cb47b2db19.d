/root/repo/target/debug/deps/kernels-5ddb27cb47b2db19.d: tests/tests/kernels.rs

/root/repo/target/debug/deps/kernels-5ddb27cb47b2db19: tests/tests/kernels.rs

tests/tests/kernels.rs:
