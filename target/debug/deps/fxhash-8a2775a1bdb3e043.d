/root/repo/target/debug/deps/fxhash-8a2775a1bdb3e043.d: vendor/fxhash/src/lib.rs

/root/repo/target/debug/deps/fxhash-8a2775a1bdb3e043: vendor/fxhash/src/lib.rs

vendor/fxhash/src/lib.rs:
