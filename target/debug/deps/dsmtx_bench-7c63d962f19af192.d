/root/repo/target/debug/deps/dsmtx_bench-7c63d962f19af192.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs

/root/repo/target/debug/deps/dsmtx_bench-7c63d962f19af192: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/figures.rs crates/bench/src/format.rs crates/bench/src/queuebench.rs crates/bench/src/shardsweep.rs crates/bench/src/tracedemo.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/figures.rs:
crates/bench/src/format.rs:
crates/bench/src/queuebench.rs:
crates/bench/src/shardsweep.rs:
crates/bench/src/tracedemo.rs:
