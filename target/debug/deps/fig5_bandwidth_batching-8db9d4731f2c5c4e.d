/root/repo/target/debug/deps/fig5_bandwidth_batching-8db9d4731f2c5c4e.d: crates/bench/benches/fig5_bandwidth_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bandwidth_batching-8db9d4731f2c5c4e.rmeta: crates/bench/benches/fig5_bandwidth_batching.rs Cargo.toml

crates/bench/benches/fig5_bandwidth_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
