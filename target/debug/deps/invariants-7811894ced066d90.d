/root/repo/target/debug/deps/invariants-7811894ced066d90.d: tests/tests/invariants.rs

/root/repo/target/debug/deps/invariants-7811894ced066d90: tests/tests/invariants.rs

tests/tests/invariants.rs:
