/root/repo/target/debug/deps/ablations-feef45867e2c3f76.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-feef45867e2c3f76: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
