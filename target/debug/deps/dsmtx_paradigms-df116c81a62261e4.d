/root/repo/target/debug/deps/dsmtx_paradigms-df116c81a62261e4.d: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

/root/repo/target/debug/deps/libdsmtx_paradigms-df116c81a62261e4.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/executor.rs crates/paradigms/src/paradigm.rs Cargo.toml

crates/paradigms/src/lib.rs:
crates/paradigms/src/executor.rs:
crates/paradigms/src/paradigm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
