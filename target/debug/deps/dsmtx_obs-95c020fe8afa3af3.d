/root/repo/target/debug/deps/dsmtx_obs-95c020fe8afa3af3.d: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libdsmtx_obs-95c020fe8afa3af3.rlib: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libdsmtx_obs-95c020fe8afa3af3.rmeta: crates/obs/src/lib.rs crates/obs/src/chrome.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/chrome.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
