/root/repo/target/debug/deps/invariants-33bb207343b45f88.d: tests/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-33bb207343b45f88.rmeta: tests/tests/invariants.rs Cargo.toml

tests/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
