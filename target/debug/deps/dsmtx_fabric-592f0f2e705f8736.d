/root/repo/target/debug/deps/dsmtx_fabric-592f0f2e705f8736.d: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/libdsmtx_fabric-592f0f2e705f8736.rlib: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/libdsmtx_fabric-592f0f2e705f8736.rmeta: crates/fabric/src/lib.rs crates/fabric/src/barrier.rs crates/fabric/src/cost.rs crates/fabric/src/error.rs crates/fabric/src/fault.rs crates/fabric/src/mesh.rs crates/fabric/src/queue.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/barrier.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/error.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/mesh.rs:
crates/fabric/src/queue.rs:
crates/fabric/src/stats.rs:
