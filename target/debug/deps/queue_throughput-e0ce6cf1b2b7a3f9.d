/root/repo/target/debug/deps/queue_throughput-e0ce6cf1b2b7a3f9.d: crates/bench/benches/queue_throughput.rs

/root/repo/target/debug/deps/queue_throughput-e0ce6cf1b2b7a3f9: crates/bench/benches/queue_throughput.rs

crates/bench/benches/queue_throughput.rs:
