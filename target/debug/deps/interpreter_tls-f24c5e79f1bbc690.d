/root/repo/target/debug/deps/interpreter_tls-f24c5e79f1bbc690.d: examples/interpreter_tls.rs Cargo.toml

/root/repo/target/debug/deps/libinterpreter_tls-f24c5e79f1bbc690.rmeta: examples/interpreter_tls.rs Cargo.toml

examples/interpreter_tls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
