/root/repo/target/debug/deps/quickstart-acbf5ea2767de440.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-acbf5ea2767de440: examples/quickstart.rs

examples/quickstart.rs:
