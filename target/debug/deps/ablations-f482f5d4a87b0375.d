/root/repo/target/debug/deps/ablations-f482f5d4a87b0375.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-f482f5d4a87b0375: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
