/root/repo/target/debug/deps/sim_props-d3e394149d4b4f80.d: tests/tests/sim_props.rs Cargo.toml

/root/repo/target/debug/deps/libsim_props-d3e394149d4b4f80.rmeta: tests/tests/sim_props.rs Cargo.toml

tests/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
