/root/repo/target/debug/deps/shard_differential-059fd44003ce94dc.d: tests/tests/shard_differential.rs

/root/repo/target/debug/deps/shard_differential-059fd44003ce94dc: tests/tests/shard_differential.rs

tests/tests/shard_differential.rs:
