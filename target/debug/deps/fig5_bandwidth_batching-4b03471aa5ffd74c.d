/root/repo/target/debug/deps/fig5_bandwidth_batching-4b03471aa5ffd74c.d: crates/bench/benches/fig5_bandwidth_batching.rs

/root/repo/target/debug/deps/fig5_bandwidth_batching-4b03471aa5ffd74c: crates/bench/benches/fig5_bandwidth_batching.rs

crates/bench/benches/fig5_bandwidth_batching.rs:
