/root/repo/target/debug/deps/shard_differential-b2c152fb6471749b.d: tests/tests/shard_differential.rs Cargo.toml

/root/repo/target/debug/deps/libshard_differential-b2c152fb6471749b.rmeta: tests/tests/shard_differential.rs Cargo.toml

tests/tests/shard_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
