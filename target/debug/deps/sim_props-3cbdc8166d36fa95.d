/root/repo/target/debug/deps/sim_props-3cbdc8166d36fa95.d: tests/tests/sim_props.rs Cargo.toml

/root/repo/target/debug/deps/libsim_props-3cbdc8166d36fa95.rmeta: tests/tests/sim_props.rs Cargo.toml

tests/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
