/root/repo/target/debug/deps/cluster_model-4b518b93e87680b3.d: examples/cluster_model.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_model-4b518b93e87680b3.rmeta: examples/cluster_model.rs Cargo.toml

examples/cluster_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
