/root/repo/target/debug/deps/montecarlo_pricing-798d38d1c5cbfd5a.d: examples/montecarlo_pricing.rs Cargo.toml

/root/repo/target/debug/deps/libmontecarlo_pricing-798d38d1c5cbfd5a.rmeta: examples/montecarlo_pricing.rs Cargo.toml

examples/montecarlo_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
