/root/repo/target/debug/deps/interpreter_tls-18470efd5d6c1159.d: examples/interpreter_tls.rs Cargo.toml

/root/repo/target/debug/deps/libinterpreter_tls-18470efd5d6c1159.rmeta: examples/interpreter_tls.rs Cargo.toml

examples/interpreter_tls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
