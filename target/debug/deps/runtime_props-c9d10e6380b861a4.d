/root/repo/target/debug/deps/runtime_props-c9d10e6380b861a4.d: tests/tests/runtime_props.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_props-c9d10e6380b861a4.rmeta: tests/tests/runtime_props.rs Cargo.toml

tests/tests/runtime_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
