/root/repo/target/debug/deps/fig4_scalability-aa506dc52459e549.d: crates/bench/benches/fig4_scalability.rs

/root/repo/target/debug/deps/fig4_scalability-aa506dc52459e549: crates/bench/benches/fig4_scalability.rs

crates/bench/benches/fig4_scalability.rs:
