/root/repo/target/debug/deps/dsmtx_integration_tests-868b9aa0a2b9ddfd.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-868b9aa0a2b9ddfd.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdsmtx_integration_tests-868b9aa0a2b9ddfd.rmeta: tests/src/lib.rs

tests/src/lib.rs:
