/root/repo/target/debug/deps/compress_pipeline-38c1a35c216aae6d.d: examples/compress_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcompress_pipeline-38c1a35c216aae6d.rmeta: examples/compress_pipeline.rs Cargo.toml

examples/compress_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
