/root/repo/target/debug/deps/sim_props-b15e02a9be4f5e27.d: tests/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-b15e02a9be4f5e27: tests/tests/sim_props.rs

tests/tests/sim_props.rs:
