/root/repo/target/debug/deps/fig4_scalability-df794c47a8759d28.d: crates/bench/benches/fig4_scalability.rs

/root/repo/target/debug/deps/fig4_scalability-df794c47a8759d28: crates/bench/benches/fig4_scalability.rs

crates/bench/benches/fig4_scalability.rs:
