/root/repo/target/debug/libfxhash.rlib: /root/repo/vendor/fxhash/src/lib.rs
