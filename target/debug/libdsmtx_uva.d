/root/repo/target/debug/libdsmtx_uva.rlib: /root/repo/crates/uva/src/addr.rs /root/repo/crates/uva/src/alloc.rs /root/repo/crates/uva/src/lib.rs
