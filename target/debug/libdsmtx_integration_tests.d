/root/repo/target/debug/libdsmtx_integration_tests.rlib: /root/repo/tests/src/lib.rs
