//! Exploring a custom workload on the cluster performance model.
//!
//! The simulator is a public API: describe your own loop (stage shapes,
//! work split, bytes moved, speculation traffic) and ask how it would
//! scale on the paper's 32-node/128-core platform — under Spec-DSWP, the
//! TLS baseline, different batch sizes, and injected misspeculation.
//!
//! Run with: `cargo run -p dsmtx-examples --bin cluster_model`

use dsmtx_sim::profile::{StageProfile, StageShape};
use dsmtx_sim::{batch_sweep, SimEngine, TlsPlan, WorkloadProfile};

fn main() {
    // A hypothetical log-analytics loop: a sequential reader feeding a
    // wide parse/aggregate stage, with a sequential emitter.
    let profile = WorkloadProfile {
        name: "log-analytics".into(),
        iter_work: 2.0e-3,
        iterations: 5000,
        coverage: 0.97,
        stages: vec![
            StageProfile {
                shape: StageShape::Sequential,
                work_fraction: 0.04,
                bytes_out: 8_192.0, // one log batch per iteration
            },
            StageProfile {
                shape: StageShape::Parallel,
                work_fraction: 0.94,
                bytes_out: 128.0, // aggregated records
            },
            StageProfile {
                shape: StageShape::Sequential,
                work_fraction: 0.02,
                bytes_out: 0.0,
            },
        ],
        validation_words: 48.0,
        tls: TlsPlan {
            sync_fraction: 0.05, // the emitter ordering, synchronized
            bytes_per_iter: 512.0,
            validation_words: 48.0,
        },
        chunked: false,
        invocation: None,
    };
    profile.check();

    let engine = SimEngine::default();
    println!("cores  Spec-DSWP    TLS   bandwidth");
    println!("------------------------------------");
    for cores in [8u32, 16, 32, 64, 128] {
        let d = engine.simulate_spec_dswp(&profile, cores, 0.0);
        let t = engine.simulate_tls(&profile, cores, 0.0);
        println!(
            "{cores:>5}  {:>8.1}x  {:>5.1}x  {:>7.1} MB/s",
            d.app_speedup,
            t.app_speedup,
            d.bandwidth / 1e6
        );
    }

    let dirty = engine.simulate_spec_dswp(&profile, 128, 0.001);
    let clean = engine.simulate_spec_dswp(&profile, 128, 0.0);
    println!(
        "\nat 0.1% misspeculation: {:.1}x -> {:.1}x over {} rollbacks \
         (RFP is {:.0}% of the overhead)",
        clean.app_speedup,
        dirty.app_speedup,
        dirty.recovery.episodes,
        100.0 * dirty.recovery.rfp / dirty.recovery.total()
    );

    println!("\nbatch-size sweep at 128 cores:");
    for p in batch_sweep(&profile, 128, &[1.0, 16.0, 256.0]) {
        println!("  {:>4} items/msg -> {:.1}x", p.batch_items, p.speedup);
    }
}
