//! Spec-DOALL Monte-Carlo portfolio pricing — the `swaptions` structure.
//!
//! Every iteration prices one swaption independently; the only speculated
//! dependence is the rare error path during price calculation (a
//! degenerate quote). Both the DSMTX and TLS-only parallelizations are
//! the same Spec-DOALL, as in the paper (§5.1).
//!
//! Run with: `cargo run -p dsmtx-examples --bin montecarlo_pricing`

use dsmtx_workloads::common::w2f;
use dsmtx_workloads::swaptions::Swaptions;
use dsmtx_workloads::{Kernel, Mode, Scale};

fn main() {
    let kernel = Swaptions;
    let scale = Scale {
        iterations: 16,
        unit: 8,
        seed: 7,
    };

    let seq = kernel.run(Mode::Sequential, scale).expect("sequential");
    let par = kernel
        .run(Mode::Dsmtx { workers: 4 }, scale)
        .expect("parallel");
    assert_eq!(seq, par, "prices must be bitwise identical");

    println!("swaption  price");
    println!("---------------");
    for (i, bits) in par.iter().enumerate() {
        println!("{i:>8}  {:.6}", w2f(*bits));
    }

    // A degenerate quote (zero volatility) takes the speculated error
    // path; recovery prices it with the guarded sequential code.
    let seq = kernel
        .run_with_planted_error(Mode::Sequential, scale)
        .expect("sequential");
    let par = kernel
        .run_with_planted_error(Mode::Dsmtx { workers: 4 }, scale)
        .expect("parallel");
    assert_eq!(seq, par);
    println!(
        "\nwith one degenerate quote: misspeculation recovered, \
         flagged output slot = {:#x}",
        par[(scale.iterations / 2) as usize]
    );
}
