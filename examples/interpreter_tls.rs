//! Speculating that interpreter scripts are independent — the `130.li`
//! structure.
//!
//! The parallelization speculates that no script mutates the interpreter
//! environment or exits the interpreter. A corpus with one `SETENV`
//! script manifests the environment dependence (caught by value
//! validation in the try-commit unit), and one with an `EXIT` script ends
//! the loop under control speculation. The TLS baseline orders the print
//! through the replica ring.
//!
//! Run with: `cargo run -p dsmtx-examples --bin interpreter_tls`

use dsmtx_workloads::li::{Corpus, Li, ENV_WORDS};
use dsmtx_workloads::{Mode, Scale};

fn run(corpus: Corpus, label: &str) {
    let li = Li;
    let scale = Scale {
        iterations: 12,
        unit: 10,
        seed: 1130,
    };
    let seq = li.run_corpus(Mode::Sequential, scale, corpus).expect("seq");
    let par = li
        .run_corpus(Mode::Dsmtx { workers: 3 }, scale, corpus)
        .expect("dsmtx");
    let tls = li
        .run_corpus(Mode::Tls { workers: 2 }, scale, corpus)
        .expect("tls");
    assert_eq!(seq, par, "{label}: DSWP+[Spec-DOALL,S] output");
    assert_eq!(seq, tls, "{label}: TLS output");
    let count = seq[seq.len() - 1 - ENV_WORDS as usize];
    let env = &seq[seq.len() - ENV_WORDS as usize..];
    println!("{label}: {count} scripts printed, final env = {env:?}");
}

fn main() {
    run(
        Corpus {
            with_setenv: false,
            with_exit: false,
        },
        "pure scripts          ",
    );
    run(
        Corpus {
            with_setenv: true,
            with_exit: false,
        },
        "one SETENV script     ",
    );
    run(
        Corpus {
            with_setenv: false,
            with_exit: true,
        },
        "one EXIT script       ",
    );
    run(
        Corpus {
            with_setenv: true,
            with_exit: true,
        },
        "SETENV + EXIT combined",
    );
    println!("\nall modes agree on every corpus");
}
