//! A `Spec-DSWP+[S, DOALL, S]` compression pipeline — the `164.gzip`
//! structure of the paper.
//!
//! Stage 0 (sequential) reads fixed-interval blocks and ships them down
//! the pipeline; stage 1 (DOALL) compresses blocks in private memory
//! versions; stage 2 (sequential) appends records to the output stream at
//! a cursor. A rare escape marker in one block exercises control-flow
//! misspeculation: the runtime rolls back, re-executes that block
//! sequentially, and the final stream still matches the sequential
//! reference bit for bit.
//!
//! Run with: `cargo run -p dsmtx-examples --bin compress_pipeline`

use dsmtx_workloads::gzip::Gzip;
use dsmtx_workloads::{Kernel, Mode, Scale};

fn main() {
    let kernel = Gzip;
    let scale = Scale {
        iterations: 24,
        unit: 48,
        seed: 2026,
    };

    let seq = kernel.run(Mode::Sequential, scale).expect("sequential");
    let par = kernel
        .run(Mode::Dsmtx { workers: 3 }, scale)
        .expect("dsmtx");
    assert_eq!(seq, par, "pipeline output must match the reference");
    let in_words = scale.iterations * scale.unit;
    println!(
        "clean input: {} blocks x {} words -> {} stream words ({}% of input), outputs identical",
        scale.iterations,
        scale.unit,
        seq[0],
        100 * seq[0] / in_words,
    );

    // Now with a planted escape marker: the rare path the parallelization
    // speculates against.
    let seq = kernel
        .run_with_planted_escape(Mode::Sequential, scale)
        .expect("sequential");
    let par = kernel
        .run_with_planted_escape(Mode::Dsmtx { workers: 3 }, scale)
        .expect("dsmtx");
    assert_eq!(seq, par, "recovery must reproduce the sequential stream");
    println!(
        "escape-marked input: one block took the rare path (stored raw), \
         misspeculation recovered, outputs identical"
    );

    // The TLS baseline (cursor synchronized around the replica ring)
    // computes the same stream too.
    let tls = kernel
        .run_with_planted_escape(Mode::Tls { workers: 2 }, scale)
        .expect("tls");
    assert_eq!(seq, tls, "TLS baseline agrees");
    println!("TLS baseline agrees with the Spec-DSWP pipeline");
}
