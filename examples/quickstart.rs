//! Quickstart: parallelize a loop with DSMTX in ~40 lines.
//!
//! A two-stage pipeline over a counted loop: a parallel (DOALL) stage
//! squares array elements, a sequential stage folds them into a sum. All
//! program state lives in DSMTX's unified virtual address space; the
//! workers share nothing and communicate only through the runtime.
//!
//! Run with: `cargo run -p dsmtx-examples --bin quickstart`

use std::sync::Arc;

use dsmtx::{IterOutcome, MtxId, MtxSystem, Program, StageKind, SystemConfig, WorkerCtx};
use dsmtx_mem::MasterMem;
use dsmtx_uva::{OwnerId, RegionAllocator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u64 = 64;

    // Sequential pre-loop code (the commit unit's role): allocate and
    // initialize the committed memory image.
    let mut heap = RegionAllocator::new(OwnerId(0));
    let input = heap.alloc_words(N)?;
    let sum = heap.alloc_words(1)?;
    let mut master = MasterMem::new();
    for i in 0..N {
        master.write(input.add_words(i), i + 1);
    }

    // Pipeline: 3 DOALL replicas feeding one sequential accumulator.
    let mut cfg = SystemConfig::new();
    cfg.stage(StageKind::Parallel { replicas: 3 })
        .stage(StageKind::Sequential);
    let system = MtxSystem::new(&cfg)?;

    let square = Arc::new(move |ctx: &mut WorkerCtx, mtx: MtxId| {
        let x = ctx.read(input.add_words(mtx.0))?;
        ctx.produce(x * x);
        Ok(IterOutcome::Continue)
    });
    let accumulate = Arc::new(move |ctx: &mut WorkerCtx, _: MtxId| {
        let sq = ctx.consume();
        let acc = ctx.read(sum)?;
        ctx.write(sum, acc + sq)?;
        Ok(IterOutcome::Continue)
    });

    let result = system.run(Program {
        master,
        stages: vec![square, accumulate],
        recovery: Box::new(|_, _| IterOutcome::Continue),
        on_commit: None,
        iteration_limit: Some(N),
    })?;

    let expected: u64 = (1..=N).map(|x| x * x).sum();
    let got = result.master.read(sum);
    println!("sum of squares 1..={N}: {got} (expected {expected})");
    println!(
        "committed {} MTXs, {} recoveries, {} COA pages, {} bytes moved",
        result.report.committed,
        result.report.recoveries,
        result.report.coa_pages_served,
        result.report.stats.bytes(),
    );
    assert_eq!(got, expected);
    Ok(())
}
